#include "baseline/instant_loading.h"

#include <algorithm>
#include <cstring>

#include "baseline/row_buffer.h"
#include "parallel/thread_pool.h"
#include "util/stopwatch.h"

namespace parparaw {

Result<ParseOutput> InstantLoadingParser::Parse(
    std::string_view input, const InstantLoadingOptions& options) {
  ParseOptions resolved = options.base;
  if (resolved.format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(resolved.format, Rfc4180Format());
  }
  ThreadPool* pool =
      resolved.pool != nullptr ? resolved.pool : ThreadPool::Default();
  int workers = options.num_workers > 0 ? options.num_workers
                                        : pool->num_threads();
  workers = std::max(1, workers);

  int64_t skip_rows = resolved.skip_rows;
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos =
        input.find(static_cast<char>(resolved.format.record_delimiter));
    if (pos == std::string_view::npos) {
      input = std::string_view();
      break;
    }
    input.remove_prefix(pos + 1);
    --skip_rows;
  }

  const auto* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t size = input.size();
  const char record_delim =
      static_cast<char>(resolved.format.record_delimiter);

  ParseOutput output;
  output.work.input_bytes = static_cast<int64_t>(size);

  // --- Chunk-boundary resolution. ---
  Stopwatch split_watch;
  std::vector<size_t> split(workers + 1, size);
  split[0] = 0;
  std::vector<size_t> targets(workers);
  for (int w = 0; w < workers; ++w) {
    targets[w] = size * static_cast<size_t>(w) / workers;
  }
  if (options.safe_mode) {
    // Sequential context pass: track the DFA so chunks split only at true
    // record delimiters (quoted newlines are skipped). This is the serial
    // work share that bounds the approach's scalability.
    const Dfa& dfa = resolved.format.dfa;
    int state = dfa.start_state();
    int next_target = 1;
    for (size_t i = 0; i < size && next_target < workers; ++i) {
      const int group = dfa.SymbolGroup(data[i]);
      const uint8_t flags = dfa.Flags(state, group);
      state = dfa.NextState(state, group);
      if (flags & kSymbolRecordDelimiter) {
        while (next_target < workers && targets[next_target] <= i) {
          split[next_target] = i + 1;
          ++next_target;
        }
      }
    }
  } else {
    // Unsafe mode: the first raw newline at/after the target — wrong when
    // a newline may be quoted.
    for (int w = 1; w < workers; ++w) {
      const void* hit = std::memchr(data + targets[w], record_delim,
                                    size - targets[w]);
      split[w] = hit != nullptr
                     ? static_cast<size_t>(
                           static_cast<const uint8_t*>(hit) - data) +
                           1
                     : size;
    }
    std::sort(split.begin(), split.end());
  }
  output.timings.scan_ms = split_watch.ElapsedMillis();

  // --- Parallel per-chunk parsing of complete records. ---
  Stopwatch parse_watch;
  std::vector<RecordBuffer> buffers(workers);
  std::vector<ScanResult> scans(workers);
  ParallelForEach(pool, 0, workers, [&](int64_t w) {
    const size_t begin = split[w];
    const size_t end = split[w + 1];
    if (begin >= end) return;
    const bool is_last = (end == size);
    const bool emit_trailing = is_last && !resolved.exclude_trailing_record;
    scans[w] = AppendParsedRange(resolved.format, data, begin, end,
                                 emit_trailing, &buffers[w]);
  });
  RecordBuffer merged = std::move(buffers[0]);
  for (int w = 1; w < workers; ++w) merged.Append(buffers[w]);
  if (resolved.validate) {
    for (int w = 0; w < workers; ++w) {
      if (split[w] < split[w + 1] && scans[w].first_invalid >= 0) {
        return Status::ParseError(
            "invalid symbol at byte offset " +
            std::to_string(static_cast<int64_t>(split[w]) +
                           scans[w].first_invalid));
      }
    }
  }
  output.timings.parse_ms = parse_watch.ElapsedMillis();

  Stopwatch convert_watch;
  PARPARAW_ASSIGN_OR_RETURN(
      output.table, BuildTableFromRecords(merged, resolved, &output));
  output.timings.convert_ms = convert_watch.ElapsedMillis();
  return output;
}

}  // namespace parparaw
