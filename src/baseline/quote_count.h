#ifndef PARPARAW_BASELINE_QUOTE_COUNT_H_
#define PARPARAW_BASELINE_QUOTE_COUNT_H_

#include <string_view>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {

/// \brief Speculative quote-parity parser — the format-specific exploit the
/// paper describes in §1/§2 (and Mison's bitmap trick adapts to JSON).
///
/// Phase 1 counts double-quotes per chunk in parallel; an exclusive prefix
/// sum yields every chunk's quote parity. Phase 2 marks newlines at even
/// parity as record boundaries, again in parallel, and records are then
/// field-split concurrently.
///
/// This is fast and correct for plain RFC 4180 inputs (the "" escape
/// toggles parity twice), but it breaks as soon as the format gets more
/// expressive — e.g. a quote inside a line comment flips the parity and
/// corrupts every subsequent boundary — which is exactly the
/// applicability-vs-speed trade-off ParPaRaw's DFA simulation avoids.
class QuoteCountParser {
 public:
  static Result<ParseOutput> Parse(std::string_view input,
                                   const ParseOptions& options);
};

}  // namespace parparaw

#endif  // PARPARAW_BASELINE_QUOTE_COUNT_H_
