#include "baseline/quote_count.h"

#include <algorithm>

#include "baseline/row_buffer.h"
#include "core/css_index.h"
#include "parallel/scan.h"
#include "parallel/thread_pool.h"
#include "util/stopwatch.h"

namespace parparaw {

Result<ParseOutput> QuoteCountParser::Parse(std::string_view input,
                                            const ParseOptions& options) {
  ParseOptions resolved = options;
  if (resolved.format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(resolved.format, Rfc4180Format());
  }
  ThreadPool* pool =
      resolved.pool != nullptr ? resolved.pool : ThreadPool::Default();

  int64_t skip_rows = resolved.skip_rows;
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos =
        input.find(static_cast<char>(resolved.format.record_delimiter));
    if (pos == std::string_view::npos) {
      input = std::string_view();
      break;
    }
    input.remove_prefix(pos + 1);
    --skip_rows;
  }

  const auto* data = reinterpret_cast<const uint8_t*>(input.data());
  const int64_t size = static_cast<int64_t>(input.size());
  const uint8_t quote = '"';
  const uint8_t record_delim = resolved.format.record_delimiter;

  ParseOutput output;
  output.work.input_bytes = size;

  Stopwatch parse_watch;
  // Phase 1: per-chunk quote counts -> parity at each chunk start.
  const int64_t chunk = 64 * 1024;
  const int64_t num_chunks = size > 0 ? (size + chunk - 1) / chunk : 0;
  std::vector<int64_t> quote_counts(num_chunks, 0);
  ParallelForEach(pool, 0, num_chunks, [&](int64_t c) {
    const int64_t b = c * chunk;
    const int64_t e = std::min(b + chunk, size);
    int64_t count = 0;
    for (int64_t i = b; i < e; ++i) count += data[i] == quote;
    quote_counts[c] = count;
  });
  std::vector<int64_t> prefix(num_chunks, 0);
  ExclusivePrefixSum(pool, quote_counts.data(), prefix.data(), num_chunks);

  // Phase 2: newlines at even parity are record boundaries.
  std::vector<std::vector<int64_t>> chunk_boundaries(num_chunks);
  ParallelForEach(pool, 0, num_chunks, [&](int64_t c) {
    const int64_t b = c * chunk;
    const int64_t e = std::min(b + chunk, size);
    bool in_quotes = (prefix[c] & 1) != 0;
    for (int64_t i = b; i < e; ++i) {
      if (data[i] == quote) {
        in_quotes = !in_quotes;
      } else if (data[i] == record_delim && !in_quotes) {
        chunk_boundaries[c].push_back(i);
      }
    }
  });
  std::vector<int64_t> boundaries;
  for (const auto& v : chunk_boundaries) {
    boundaries.insert(boundaries.end(), v.begin(), v.end());
  }

  // Field-split every record concurrently (grouped per worker), starting
  // each record's DFA from the start state.
  const int64_t num_bounded = static_cast<int64_t>(boundaries.size());
  const bool trailing =
      (num_bounded == 0 ? size > 0
                        : boundaries.back() + 1 < size) &&
      !resolved.exclude_trailing_record;
  const int64_t num_records = num_bounded + (trailing ? 1 : 0);
  const int workers = std::max(1, pool->num_threads());
  std::vector<RecordBuffer> buffers(workers);
  ParallelForEach(pool, 0, workers, [&](int64_t w) {
    const int64_t rec_begin = num_records * w / workers;
    const int64_t rec_end = num_records * (w + 1) / workers;
    for (int64_t r = rec_begin; r < rec_end; ++r) {
      const int64_t begin = r == 0 ? 0 : boundaries[r - 1] + 1;
      const int64_t end = r < num_bounded ? boundaries[r] + 1 : size;
      AppendParsedRange(resolved.format, data, static_cast<size_t>(begin),
                        static_cast<size_t>(end), /*emit_trailing=*/true,
                        &buffers[w]);
    }
  });
  RecordBuffer merged = std::move(buffers[0]);
  for (int w = 1; w < workers; ++w) merged.Append(buffers[w]);
  output.timings.parse_ms = parse_watch.ElapsedMillis();

  Stopwatch convert_watch;
  PARPARAW_ASSIGN_OR_RETURN(
      output.table, BuildTableFromRecords(merged, resolved, &output));
  output.timings.convert_ms = convert_watch.ElapsedMillis();
  return output;
}

}  // namespace parparaw
