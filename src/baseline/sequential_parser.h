#ifndef PARPARAW_BASELINE_SEQUENTIAL_PARSER_H_
#define PARPARAW_BASELINE_SEQUENTIAL_PARSER_H_

#include <string_view>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {

/// \brief Reference single-threaded parser.
///
/// Walks the format's DFA over the whole input beginning to end — the
/// classic sequential approach ParPaRaw contrasts itself with (§3.1) — and
/// materialises the same columnar output with identical semantics (drop
/// policies, defaults, rejects). It serves two purposes: the ground truth
/// for ParPaRaw's property tests, and the "single-threaded CPU system"
/// class in the Fig. 13 end-to-end comparison.
class SequentialParser {
 public:
  static Result<ParseOutput> Parse(std::string_view input,
                                   const ParseOptions& options);
};

}  // namespace parparaw

#endif  // PARPARAW_BASELINE_SEQUENTIAL_PARSER_H_
