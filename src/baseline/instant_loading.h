#ifndef PARPARAW_BASELINE_INSTANT_LOADING_H_
#define PARPARAW_BASELINE_INSTANT_LOADING_H_

#include <string_view>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {

/// Options for the Instant-Loading-style chunked parser.
struct InstantLoadingOptions {
  /// Base parsing configuration (format, schema, policies).
  ParseOptions base;
  /// Logical parallel workers (chunks); defaults to the pool width.
  int num_workers = 0;
  /// Safe mode (Mühlbauer et al. §related-work): a *sequential* pre-pass
  /// tracks quotation scopes so chunks split only at true record
  /// delimiters. Without it, chunk boundaries are placed at the first raw
  /// newline — fast, but wrong for inputs whose newlines may be quoted
  /// (the reason Inst. Loading "could not handle the yelp dataset").
  bool safe_mode = false;
};

/// \brief Re-implementation of the Instant Loading chunked parser
/// (Mühlbauer et al., PVLDB 2013), the paper's strongest CPU competitor.
///
/// The input is split into equal chunks; each worker skips ahead to its
/// first record boundary, parses complete records (reading past its chunk
/// end to finish the last one), and the per-worker buffers are merged. The
/// sequential safe-mode pass is the Amdahl bottleneck ParPaRaw eliminates.
class InstantLoadingParser {
 public:
  static Result<ParseOutput> Parse(std::string_view input,
                                   const InstantLoadingOptions& options);
};

}  // namespace parparaw

#endif  // PARPARAW_BASELINE_INSTANT_LOADING_H_
