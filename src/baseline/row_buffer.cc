#include "baseline/row_buffer.h"

#include <algorithm>
#include <cstring>

#include "convert/inference.h"
#include "convert/numeric.h"
#include "convert/temporal.h"

namespace parparaw {

void RecordBuffer::Append(const RecordBuffer& other) {
  const int64_t byte_base = static_cast<int64_t>(bytes_.size());
  const int64_t field_base = static_cast<int64_t>(field_ends_.size());
  bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
  field_ends_.reserve(field_ends_.size() + other.field_ends_.size());
  for (int64_t e : other.field_ends_) field_ends_.push_back(e + byte_base);
  record_ends_.reserve(record_ends_.size() + other.record_ends_.size());
  for (int64_t e : other.record_ends_) record_ends_.push_back(e + field_base);
}

ScanResult AppendParsedRange(const Format& format, const uint8_t* data,
                             size_t begin, size_t end, bool emit_trailing,
                             RecordBuffer* out) {
  const Dfa& dfa = format.dfa;
  ScanResult result;
  int state = dfa.start_state();
  const int invalid = dfa.invalid_state();
  for (size_t i = begin; i < end; ++i) {
    const int group = dfa.SymbolGroup(data[i]);
    const uint8_t flags = dfa.Flags(state, group);
    const int next = dfa.NextState(state, group);
    if (flags & kSymbolRecordDelimiter) {
      out->EndField();
      out->EndRecord();
    } else if (flags & kSymbolFieldDelimiter) {
      // An inclusive boundary (no control bit) is the field's last value
      // byte as well as its end (fixed-width dialects).
      if ((flags & kSymbolControl) == 0) out->AppendFieldByte(data[i]);
      out->EndField();
    } else if (flags & kSymbolControl) {
      // Not part of any field's value.
    } else {
      out->AppendFieldByte(data[i]);
    }
    if (invalid >= 0 && next == invalid && state != invalid &&
        result.first_invalid < 0) {
      result.first_invalid = static_cast<int64_t>(i - begin);
    }
    state = next;
  }
  if (emit_trailing && format.IsMidRecordState(state)) {
    out->EndField();
    out->EndRecord();
  }
  result.final_state = state;
  return result;
}

namespace {

bool ConvertBufferedValue(const DataType& type, std::string_view sv,
                          Column* column, int64_t row) {
  switch (type.id) {
    case TypeId::kBool: {
      bool v;
      if (!ParseBool(sv, &v)) return false;
      column->SetValue<uint8_t>(row, v ? 1 : 0);
      return true;
    }
    case TypeId::kInt32: {
      int32_t v;
      if (!ParseInt32(sv, &v)) return false;
      column->SetValue<int32_t>(row, v);
      return true;
    }
    case TypeId::kInt64: {
      int64_t v;
      if (!ParseInt64(sv, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kFloat64: {
      double v;
      if (!ParseFloat64(sv, &v)) return false;
      column->SetValue<double>(row, v);
      return true;
    }
    case TypeId::kDecimal64: {
      int64_t v;
      if (!ParseDecimal64(sv, type.scale, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kDate32: {
      int32_t v;
      if (!ParseDate32(sv, &v)) return false;
      column->SetValue<int32_t>(row, v);
      return true;
    }
    case TypeId::kTimestampMicros: {
      int64_t v;
      if (!ParseTimestampMicros(sv, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kString:
      return false;
  }
  return false;
}

}  // namespace

Result<Table> BuildTableFromRecords(const RecordBuffer& records,
                                    const ParseOptions& options,
                                    ParseOutput* output) {
  const int64_t num_records = records.num_records();
  const bool schema_given = options.schema.num_fields() > 0;

  // Drop resolution, mirroring TagStep.
  std::vector<uint8_t> dropped(num_records, 0);
  if (options.exclude_trailing_record) {
    // Callers of the baselines handle carry-over themselves via
    // AppendParsedRange's emit_trailing flag; nothing to do here.
  }
  for (int64_t idx : options.skip_records) {
    if (idx >= 0 && idx < num_records) dropped[idx] = 1;
  }
  if (options.column_count_policy != ColumnCountPolicy::kRobust &&
      num_records > 0) {
    uint32_t expected =
        schema_given ? static_cast<uint32_t>(options.schema.num_fields()) : 0;
    if (expected == 0) {
      for (int64_t r = 0; r < num_records; ++r) {
        if (!dropped[r]) {
          expected = std::max(expected,
                              static_cast<uint32_t>(records.FieldCount(r)));
        }
      }
    }
    for (int64_t r = 0; r < num_records; ++r) {
      if (dropped[r]) continue;
      if (static_cast<uint32_t>(records.FieldCount(r)) != expected) {
        if (options.column_count_policy == ColumnCountPolicy::kValidate) {
          return Status::ParseError(
              "record " + std::to_string(r) + " has " +
              std::to_string(records.FieldCount(r)) + " columns, expected " +
              std::to_string(expected));
        }
        dropped[r] = 1;
      }
    }
  }

  std::vector<int64_t> kept;
  kept.reserve(num_records);
  uint32_t min_cols = 0;
  uint32_t max_cols = 0;
  bool any = false;
  for (int64_t r = 0; r < num_records; ++r) {
    if (dropped[r]) continue;
    kept.push_back(r);
    const uint32_t count = static_cast<uint32_t>(records.FieldCount(r));
    min_cols = any ? std::min(min_cols, count) : count;
    max_cols = any ? std::max(max_cols, count) : count;
    any = true;
  }
  const int64_t rows = static_cast<int64_t>(kept.size());

  const uint32_t num_data_cols =
      schema_given ? static_cast<uint32_t>(options.schema.num_fields())
                   : max_cols;
  std::vector<uint8_t> skipped_col(num_data_cols, 0);
  for (int col : options.skip_columns) {
    if (col >= 0 && static_cast<uint32_t>(col) < num_data_cols) {
      skipped_col[col] = 1;
    }
  }

  Table table;
  table.num_rows = rows;
  table.rejected.assign(rows, 0);

  for (uint32_t j = 0; j < num_data_cols; ++j) {
    if (skipped_col[j]) continue;
    Field field = schema_given
                      ? options.schema.field(static_cast<int>(j))
                      : Field("f" + std::to_string(j), DataType::String());
    if (!schema_given && options.infer_types) {
      InferredKind kind = InferredKind::kEmpty;
      for (int64_t row = 0; row < rows; ++row) {
        const int64_t r = kept[row];
        if (j < static_cast<uint32_t>(records.FieldCount(r))) {
          // Match ParPaRaw: only non-empty fields produce CSS runs, but
          // empty fields classify to kEmpty (the join identity) anyway.
          kind = Join(kind,
                      ClassifyField(records.FieldValue(records.FirstField(r) + j)));
        }
      }
      field.type = KindToDataType(kind);
    }
    const bool has_default = field.default_value.has_value();
    Column column(field.type);
    column.Allocate(rows);
    Column default_holder(field.type);
    if (has_default && field.type.id != TypeId::kString) {
      default_holder.Allocate(1);
      if (!ConvertBufferedValue(field.type, *field.default_value,
                                &default_holder, 0)) {
        return Status::Invalid("default value '" + *field.default_value +
                               "' is not a valid " + field.type.ToString());
      }
    }
    const int width = FixedWidth(field.type.id);
    if (field.type.id == TypeId::kString) {
      // Two passes: offsets, then bytes (mirrors the parallel layout).
      std::vector<int64_t>* offsets = column.mutable_offsets();
      std::vector<uint8_t>* data = column.mutable_string_data();
      int64_t running = 0;
      for (int64_t row = 0; row < rows; ++row) {
        const int64_t r = kept[row];
        const bool exists = j < static_cast<uint32_t>(records.FieldCount(r));
        std::string_view sv =
            exists ? records.FieldValue(records.FirstField(r) + j)
                   : std::string_view();
        (*offsets)[row] = running;
        if (exists && !sv.empty()) {
          data->insert(data->end(), sv.begin(), sv.end());
          running += static_cast<int64_t>(sv.size());
          column.SetValid(row);
        } else if (exists || has_default) {
          if (has_default) {
            data->insert(data->end(), field.default_value->begin(),
                         field.default_value->end());
            running += static_cast<int64_t>(field.default_value->size());
          }
          column.SetValid(row);
        } else {
          column.SetNull(row);
          if (!field.nullable) table.rejected[row] = 1;
        }
      }
      (*offsets)[rows] = running;
    } else {
      for (int64_t row = 0; row < rows; ++row) {
        const int64_t r = kept[row];
        const bool exists = j < static_cast<uint32_t>(records.FieldCount(r));
        std::string_view sv =
            exists ? records.FieldValue(records.FirstField(r) + j)
                   : std::string_view();
        bool ok = false;
        if (!sv.empty()) {
          ok = ConvertBufferedValue(field.type, sv, &column, row);
          if (!ok) table.rejected[row] = 1;
        } else if (has_default) {
          std::memcpy(column.mutable_data()->data() + row * width,
                      default_holder.data().data(), width);
          column.SetValid(row);
          ok = true;
        }
        if (!ok) {
          column.SetNull(row);
          if (!field.nullable) table.rejected[row] = 1;
        }
      }
    }
    table.schema.AddField(field);
    table.columns.push_back(std::move(column));
  }

  if (output != nullptr) {
    output->min_columns = min_cols;
    output->max_columns = max_cols;
    output->records_dropped = num_records - rows;
  }
  return table;
}

}  // namespace parparaw
