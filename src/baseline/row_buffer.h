#ifndef PARPARAW_BASELINE_ROW_BUFFER_H_
#define PARPARAW_BASELINE_ROW_BUFFER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "columnar/table.h"
#include "core/options.h"
#include "dfa/formats.h"
#include "util/result.h"

namespace parparaw {

/// \brief Row-oriented record storage shared by the baseline parsers.
///
/// Field bytes (already unescaped) are appended to one contiguous buffer;
/// `field_ends` and `record_ends` delimit fields and records. This keeps
/// the baselines allocation-light and lets per-thread buffers be merged by
/// concatenation.
class RecordBuffer {
 public:
  void AppendFieldByte(uint8_t byte) { bytes_.push_back(byte); }
  void AppendFieldBytes(std::string_view sv) {
    bytes_.insert(bytes_.end(), sv.begin(), sv.end());
  }
  void EndField() { field_ends_.push_back(static_cast<int64_t>(bytes_.size())); }
  void EndRecord() {
    record_ends_.push_back(static_cast<int64_t>(field_ends_.size()));
  }

  int64_t num_records() const {
    return static_cast<int64_t>(record_ends_.size());
  }
  /// Number of fields of record r.
  int64_t FieldCount(int64_t r) const {
    return record_ends_[r] - (r == 0 ? 0 : record_ends_[r - 1]);
  }
  /// Value of field f (global field index).
  std::string_view FieldValue(int64_t f) const {
    const int64_t begin = f == 0 ? 0 : field_ends_[f - 1];
    const int64_t end = field_ends_[f];
    return std::string_view(reinterpret_cast<const char*>(bytes_.data()) + begin,
                            static_cast<size_t>(end - begin));
  }
  /// Global index of record r's first field.
  int64_t FirstField(int64_t r) const {
    return r == 0 ? 0 : record_ends_[r - 1];
  }

  /// Appends all of `other`'s records after this buffer's (order-preserving
  /// merge of per-thread buffers).
  void Append(const RecordBuffer& other);

 private:
  std::vector<uint8_t> bytes_;
  std::vector<int64_t> field_ends_;
  std::vector<int64_t> record_ends_;
};

/// Result of a DFA-driven sequential scan over a byte range.
struct ScanResult {
  /// Final DFA state after the range.
  int final_state = 0;
  /// Offset of the first invalid transition relative to the range start,
  /// or -1.
  int64_t first_invalid = -1;
};

/// Walks `data[begin, end)` with the format's DFA from its start state,
/// appending field values and record boundaries to `out`. When
/// `emit_trailing` is true and the range ends mid-record, the trailing
/// record is terminated at the range end.
ScanResult AppendParsedRange(const Format& format, const uint8_t* data,
                             size_t begin, size_t end, bool emit_trailing,
                             RecordBuffer* out);

/// Converts buffered records into a columnar table with semantics
/// identical to ParPaRaw's convert step (drop policies, skip sets,
/// defaults, empty-vs-missing handling, reject flags, type inference) so
/// baseline outputs are comparable bit-for-bit in tests.
Result<Table> BuildTableFromRecords(const RecordBuffer& records,
                                    const ParseOptions& options,
                                    ParseOutput* output);

}  // namespace parparaw

#endif  // PARPARAW_BASELINE_ROW_BUFFER_H_
