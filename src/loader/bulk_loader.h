#ifndef PARPARAW_LOADER_BULK_LOADER_H_
#define PARPARAW_LOADER_BULK_LOADER_H_

#include <string>
#include <vector>

#include "columnar/statistics.h"
#include "core/options.h"
#include "dfa/sniffer.h"
#include "util/result.h"

namespace parparaw {

/// Configuration of a bulk load.
struct LoadOptions {
  /// Explicit schema; empty = sniff the dialect and infer column types.
  Schema schema;
  /// Explicit format; unset (0 states) = sniff from the file head.
  Format format;
  /// A user-defined dialect (src/dialect), compiled at runtime; mutually
  /// exclusive with an explicit format and skips sniffing. Over-budget
  /// dialects route through the scalar fallback on the serial path and
  /// are refused by the pipelined executor.
  std::optional<dialect::DialectSpec> dialect;
  /// Header handling: -1 = auto (from the sniffer), 0 = no header,
  /// 1 = first row is a header (its names become the column names).
  int header = -1;
  /// Partition size for the streaming parse.
  size_t partition_size = 64 * 1024 * 1024;
  /// Performance tuning (plan/tuning.h), assigned wholesale onto the
  /// resolved per-partition ParseOptions. The defaults leave every knob at
  /// its auto sentinel, so the adaptive planner decides them from the same
  /// head sample the loader already reads for dialect and type resolution.
  Tuning tuning;
  /// Compute per-column statistics after the load.
  bool collect_statistics = true;
  /// What to do with malformed records (see robust/quarantine.h).
  robust::ErrorPolicy error_policy = robust::ErrorPolicy::kNull;
  /// Soft cap on parse working-set bytes; 0 = unlimited. The loader
  /// degrades instead of failing: partitions shrink to fit, and LoadFile
  /// switches to a disk-streaming parse (never materialising the whole
  /// file) when the file itself would blow the budget.
  int64_t memory_budget = 0;
  ThreadPool* pool = nullptr;
  /// Run the load through the pipelined execution engine (src/exec):
  /// partition k's type conversion overlaps k+1's parse and k+2's disk
  /// read. false = the serial partition-at-a-time path, kept for
  /// differential testing (both must produce bit-identical tables).
  bool pipelined = true;
};

/// Result of a bulk load: the table plus everything an ingest pipeline
/// reports.
struct LoadResult {
  Table table;
  /// Malformed records captured under ErrorPolicy::kQuarantine, with
  /// stream-relative rows and byte spans.
  robust::QuarantineTable quarantine;
  SniffResult dialect;
  std::vector<ColumnStatistics> statistics;
  int64_t input_bytes = 0;
  int64_t rows_loaded = 0;
  int64_t rows_rejected = 0;
  double seconds = 0;
  StepTimings timings;

  std::string ReportToString() const;
};

/// \brief Bulk loading — the data-ingestion use case of the paper's
/// introduction, end to end: dialect sniffing, header/name resolution,
/// type inference, massively parallel streaming parse with bounded
/// partition memory, reject accounting, and post-load column statistics.
class BulkLoader {
 public:
  /// Loads a delimiter-separated file from disk.
  static Result<LoadResult> LoadFile(const std::string& path,
                                     const LoadOptions& options = {});

  /// Loads from an in-memory buffer.
  static Result<LoadResult> LoadBuffer(std::string_view input,
                                       const LoadOptions& options = {});

  /// Resolves dialect, header names and column types from the input head
  /// (`sample_truncated` = sample is a proper prefix of the input) into
  /// the per-partition ParseOptions; fills result->dialect. Shared by the
  /// load paths and parparaw::Reader's streaming mode.
  static Result<ParseOptions> ResolveBaseOptions(std::string_view sample,
                                                 bool sample_truncated,
                                                 const LoadOptions& options,
                                                 LoadResult* result);
};

}  // namespace parparaw

#endif  // PARPARAW_LOADER_BULK_LOADER_H_
