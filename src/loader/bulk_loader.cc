#include "loader/bulk_loader.h"

#include <algorithm>
#include <cstdio>

#include "core/parser.h"
#include "io/file.h"
#include "stream/streaming_parser.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace parparaw {

namespace {

// Extracts and unquotes the first raw line's pieces as column names.
std::vector<std::string> HeaderNames(std::string_view input,
                                     const DsvOptions& dialect) {
  const size_t eol = input.find(static_cast<char>(dialect.record_delimiter));
  std::string_view header =
      eol == std::string_view::npos ? input : input.substr(0, eol);
  if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
  std::vector<std::string> names;
  for (std::string_view piece :
       SplitString(header, static_cast<char>(dialect.field_delimiter))) {
    piece = TrimWhitespace(piece);
    if (piece.size() >= 2 && dialect.quote != 0 &&
        piece.front() == static_cast<char>(dialect.quote) &&
        piece.back() == static_cast<char>(dialect.quote)) {
      piece = piece.substr(1, piece.size() - 2);
    }
    names.emplace_back(piece);
  }
  return names;
}

}  // namespace

std::string LoadResult::ReportToString() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "loaded %lld rows (%lld rejected) from %s in %.1f ms "
                "(%.3f GB/s)\n",
                static_cast<long long>(rows_loaded),
                static_cast<long long>(rows_rejected),
                FormatBytes(input_bytes).c_str(), seconds * 1e3,
                seconds > 0 ? static_cast<double>(input_bytes) / seconds /
                                  (1 << 30)
                            : 0.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "pipeline: %s\n",
                timings.ToString().c_str());
  out += buf;
  for (size_t c = 0; c < statistics.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "  %-24s %-14s %s\n",
                  table.schema.field(static_cast<int>(c)).name.c_str(),
                  table.schema.field(static_cast<int>(c))
                      .type.ToString()
                      .c_str(),
                  statistics[c].ToString().c_str());
    out += buf;
  }
  return out;
}

Result<LoadResult> BulkLoader::LoadBuffer(std::string_view input,
                                          const LoadOptions& options) {
  Stopwatch watch;
  LoadResult result;
  result.input_bytes = static_cast<int64_t>(input.size());

  // Resolve the dialect.
  Format format = options.format;
  bool sniffed_header = false;
  if (format.dfa.num_states() == 0) {
    if (input.empty()) {
      PARPARAW_ASSIGN_OR_RETURN(format, Rfc4180Format());
    } else {
      PARPARAW_ASSIGN_OR_RETURN(
          result.dialect,
          SniffDsvFormat(input.substr(
              0, std::min<size_t>(input.size(), 64 * 1024))));
      PARPARAW_ASSIGN_OR_RETURN(format, DsvFormat(result.dialect.options));
      sniffed_header = result.dialect.has_header;
    }
  }
  const bool header =
      options.header >= 0 ? options.header != 0 : sniffed_header;

  std::vector<std::string> names;
  if (header && !input.empty()) {
    names = HeaderNames(input, result.dialect.options);
  }

  // Type resolution: explicit schema wins; otherwise parse a sample with
  // inference to fix the column types, then stream with that schema so all
  // partitions agree.
  ParseOptions base;
  base.format = format;
  base.pool = options.pool;
  base.skip_rows = header ? 1 : 0;
  if (options.schema.num_fields() > 0) {
    base.schema = options.schema;
  } else {
    ParseOptions sample_options = base;
    sample_options.infer_types = true;
    const std::string_view sample =
        input.substr(0, std::min<size_t>(input.size(), 256 * 1024));
    PARPARAW_ASSIGN_OR_RETURN(ParseOutput probe,
                              Parser::Parse(sample, sample_options));
    base.schema = probe.table.schema;
    for (int c = 0; c < base.schema.num_fields(); ++c) {
      if (c < static_cast<int>(names.size()) && !names[c].empty()) {
        base.schema.mutable_field(c)->name = names[c];
      }
    }
  }

  // Streaming parse.
  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = options.partition_size;
  PARPARAW_ASSIGN_OR_RETURN(StreamingResult streamed,
                            StreamingParser::Parse(input, streaming));
  result.table = std::move(streamed.table);
  result.timings = streamed.timings;
  result.rows_loaded = result.table.num_rows;
  result.rows_rejected = result.table.NumRejected();

  if (options.collect_statistics) {
    PARPARAW_ASSIGN_OR_RETURN(
        result.statistics,
        ComputeTableStatistics(result.table, options.pool));
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<LoadResult> BulkLoader::LoadFile(const std::string& path,
                                        const LoadOptions& options) {
  PARPARAW_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return LoadBuffer(contents, options);
}

}  // namespace parparaw
