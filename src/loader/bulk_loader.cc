#include "loader/bulk_loader.h"

#include <algorithm>
#include <cstdio>

#include "core/parser.h"
#include "exec/executor.h"
#include "io/file.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"
#include "stream/streaming_parser.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace parparaw {

namespace {

// Extracts and unquotes the first raw line's pieces as column names.
std::vector<std::string> HeaderNames(std::string_view input,
                                     const DsvOptions& dialect) {
  const size_t eol = input.find(static_cast<char>(dialect.record_delimiter));
  std::string_view header =
      eol == std::string_view::npos ? input : input.substr(0, eol);
  if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
  std::vector<std::string> names;
  for (std::string_view piece :
       SplitString(header, static_cast<char>(dialect.field_delimiter))) {
    piece = TrimWhitespace(piece);
    if (piece.size() >= 2 && dialect.quote != 0 &&
        piece.front() == static_cast<char>(dialect.quote) &&
        piece.back() == static_cast<char>(dialect.quote)) {
      piece = piece.substr(1, piece.size() - 2);
    }
    names.emplace_back(piece);
  }
  return names;
}

// Resolves dialect, header names and column types from the input head.
// `sample` is the start of the input; `sample_truncated` says it is a
// proper prefix (a disk-streaming load only reads the head), in which case
// the inference probe excludes the possibly cut-off trailing record.
// Fills result->dialect and returns the per-partition ParseOptions.
Result<ParseOptions> ResolveBase(std::string_view sample,
                                 bool sample_truncated,
                                 const LoadOptions& options,
                                 LoadResult* result) {
  Format format = options.format;
  bool sniffed_header = false;
  bool sniffed = false;
  if (options.dialect.has_value()) {
    if (format.dfa.num_states() != 0) {
      return Status::Invalid(
          "LoadOptions sets both a format and a dialect; pick one (the "
          "dialect compiles into the format)");
    }
    PARPARAW_RETURN_NOT_OK(options.dialect->Validate());
    // A user dialect pins the format family — nothing to sniff.
  } else if (format.dfa.num_states() == 0) {
    if (sample.empty()) {
      PARPARAW_ASSIGN_OR_RETURN(format, Rfc4180Format());
    } else {
      // Sniff exactly once, from the head sample; every partition of the
      // load reuses the resolved format.
      PARPARAW_ASSIGN_OR_RETURN_CTX(
          result->dialect,
          SniffDsvFormat(sample.substr(
              0, std::min<size_t>(sample.size(), 64 * 1024))),
          "loader.sniff");
      if (!result->dialect.dialect_spec.has_value()) {
        // A winning registered dialect stays a dialect (compiled by the
        // downstream entry point); a DSV winner resolves here.
        PARPARAW_ASSIGN_OR_RETURN(format,
                                  DsvFormat(result->dialect.options));
      }
      sniffed_header = result->dialect.has_header;
      sniffed = true;
    }
  }
  const bool header =
      options.header >= 0 ? options.header != 0 : sniffed_header;

  std::vector<std::string> names;
  if (header && !sample.empty()) {
    // When the caller pinned a format, the sniffer never ran and
    // result->dialect holds defaults — split the header with the pinned
    // format's delimiters, not with ','/'\n' regardless of dialect.
    DsvOptions header_dialect = result->dialect.options;
    if (options.dialect.has_value()) {
      header_dialect.field_delimiter = options.dialect->field_delimiter;
      header_dialect.record_delimiter =
          options.dialect->record_delimiter_final();
      header_dialect.quote = options.dialect->quote;
    } else if (!sniffed) {
      header_dialect.field_delimiter = format.field_delimiter;
      header_dialect.record_delimiter = format.record_delimiter;
    }
    names = HeaderNames(sample, header_dialect);
  }

  // Type resolution: explicit schema wins; otherwise parse a sample with
  // inference to fix the column types, then stream with that schema so all
  // partitions agree.
  ParseOptions base;
  static_cast<Tuning&>(base) = options.tuning;
  if (options.dialect.has_value()) {
    // Left as a dialect: every downstream entry point (Parser, streaming,
    // exec) resolves it, keeping the scalar-fallback decision theirs.
    base.dialect = options.dialect;
  } else if (sniffed && result->dialect.dialect_spec.has_value()) {
    base.dialect = result->dialect.dialect_spec;
  } else {
    base.format = format;
  }
  base.pool = options.pool;
  base.skip_rows = header ? 1 : 0;
  if (options.schema.num_fields() > 0) {
    base.schema = options.schema;
  } else {
    ParseOptions sample_options = base;
    sample_options.infer_types = true;
    // The probe is a tiny bounded parse; planning it would sample the
    // sample. The real stream plans downstream.
    sample_options.planner = PlannerMode::kDisabled;
    const std::string_view probe_input =
        sample.substr(0, std::min<size_t>(sample.size(), 256 * 1024));
    // A probe cut off mid-record would see a garbled last row and could
    // widen a column to string; drop the partial trailing record instead.
    sample_options.exclude_trailing_record =
        sample_truncated || probe_input.size() < sample.size();
    PARPARAW_ASSIGN_OR_RETURN_CTX(
        ParseOutput probe, Parser::Parse(probe_input, sample_options),
        "loader.infer");
    base.schema = probe.table.schema;
    for (int c = 0; c < base.schema.num_fields(); ++c) {
      if (c < static_cast<int>(names.size()) && !names[c].empty()) {
        base.schema.mutable_field(c)->name = names[c];
      }
    }
  }
  base.error_policy = options.error_policy;
  base.memory_budget = options.memory_budget;
  return base;
}

// Shared tail of every load path: table, quarantine, rejects, statistics.
Result<LoadResult> FinishLoad(Table table, robust::QuarantineTable quarantine,
                              const StepTimings& timings,
                              const LoadOptions& options,
                              const Stopwatch& watch, LoadResult result) {
  result.table = std::move(table);
  result.quarantine = std::move(quarantine);
  result.timings = timings;
  result.rows_loaded = result.table.num_rows;
  result.rows_rejected = result.table.NumRejected();

  if (options.collect_statistics) {
    PARPARAW_ASSIGN_OR_RETURN_CTX(
        result.statistics,
        ComputeTableStatistics(result.table, options.pool),
        "loader.statistics");
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

// Disk-streaming load for files whose monolithic parse would not fit the
// memory budget: only the head sample plus one (budget-clamped) partition
// and its carry-over are ever resident.
Result<LoadResult> LoadFileStreaming(const std::string& path,
                                     int64_t file_size,
                                     const LoadOptions& options) {
  Stopwatch watch;
  LoadResult result;
  result.input_bytes = file_size;

  FileChunkReader reader;
  PARPARAW_RETURN_NOT_OK_CTX(reader.Open(path), "loader.open");
  std::string sample;
  bool eof = false;
  PARPARAW_RETURN_NOT_OK_CTX(
      reader.ReadNext(std::min<size_t>(static_cast<size_t>(file_size),
                                       256 * 1024),
                      &sample, &eof),
      "loader.sample");
  PARPARAW_ASSIGN_OR_RETURN(
      ParseOptions base,
      ResolveBase(sample, static_cast<int64_t>(sample.size()) < file_size,
                  options, &result));

  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = options.partition_size;
  PARPARAW_ASSIGN_OR_RETURN_CTX(
      StreamingResult streamed, StreamingParser::ParseFile(path, streaming),
      "loader.stream");
  return FinishLoad(std::move(streamed.table), std::move(streamed.quarantine),
                    streamed.timings, options, watch, std::move(result));
}

}  // namespace

Result<ParseOptions> BulkLoader::ResolveBaseOptions(std::string_view sample,
                                                    bool sample_truncated,
                                                    const LoadOptions& options,
                                                    LoadResult* result) {
  return ResolveBase(sample, sample_truncated, options, result);
}

std::string LoadResult::ReportToString() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "loaded %lld rows (%lld rejected) from %s in %.1f ms "
                "(%.3f GB/s)\n",
                static_cast<long long>(rows_loaded),
                static_cast<long long>(rows_rejected),
                FormatBytes(input_bytes).c_str(), seconds * 1e3,
                seconds > 0 ? static_cast<double>(input_bytes) / seconds /
                                  (1 << 30)
                            : 0.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "pipeline: %s\n",
                timings.ToString().c_str());
  out += buf;
  for (size_t c = 0; c < statistics.size(); ++c) {
    std::snprintf(buf, sizeof(buf), "  %-24s %-14s %s\n",
                  table.schema.field(static_cast<int>(c)).name.c_str(),
                  table.schema.field(static_cast<int>(c))
                      .type.ToString()
                      .c_str(),
                  statistics[c].ToString().c_str());
    out += buf;
  }
  return out;
}

Result<LoadResult> BulkLoader::LoadBuffer(std::string_view input,
                                          const LoadOptions& options) {
  PARPARAW_FAILPOINT("loader.load");
  Stopwatch watch;
  LoadResult result;
  result.input_bytes = static_cast<int64_t>(input.size());

  PARPARAW_ASSIGN_OR_RETURN(
      ParseOptions base,
      ResolveBase(input, /*sample_truncated=*/false, options, &result));

  if (options.pipelined) {
    exec::PipelineExecutor executor;
    exec::ExecOptions exec_options;
    exec_options.base = base;
    exec_options.partition_size = options.partition_size;
    PARPARAW_ASSIGN_OR_RETURN_CTX(
        exec::IngestResult ingested,
        executor.IngestBuffer(input, exec_options), "loader.exec");
    return FinishLoad(std::move(ingested.table),
                      std::move(ingested.quarantine), ingested.timings,
                      options, watch, std::move(result));
  }

  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = options.partition_size;
  PARPARAW_ASSIGN_OR_RETURN_CTX(StreamingResult streamed,
                                StreamingParser::Parse(input, streaming),
                                "loader.stream");
  return FinishLoad(std::move(streamed.table), std::move(streamed.quarantine),
                    streamed.timings, options, watch, std::move(result));
}

Result<LoadResult> BulkLoader::LoadFile(const std::string& path,
                                        const LoadOptions& options) {
  PARPARAW_FAILPOINT("loader.load");
  if (options.pipelined) {
    // The pipelined engine reads the file partition by partition and its
    // admission controller enforces the memory budget, so there is no
    // whole-file materialisation and no separate degraded path: only the
    // head sample (dialect + type resolution) is read twice.
    Stopwatch watch;
    LoadResult result;
    FileChunkReader reader;
    PARPARAW_RETURN_NOT_OK_CTX(reader.Open(path), "loader.open");
    result.input_bytes = reader.file_size();
    std::string sample;
    if (reader.file_size() > 0) {
      bool eof = false;
      PARPARAW_RETURN_NOT_OK_CTX(
          reader.ReadNext(std::min<size_t>(
                              static_cast<size_t>(reader.file_size()),
                              256 * 1024),
                          &sample, &eof),
          "loader.sample");
    }
    PARPARAW_ASSIGN_OR_RETURN(
        ParseOptions base,
        ResolveBase(sample,
                    static_cast<int64_t>(sample.size()) < result.input_bytes,
                    options, &result));

    exec::PipelineExecutor executor;
    exec::ExecOptions exec_options;
    exec_options.base = base;
    exec_options.partition_size = options.partition_size;
    PARPARAW_ASSIGN_OR_RETURN_CTX(exec::IngestResult ingested,
                                  executor.IngestFile(path, exec_options),
                                  "loader.exec");
    return FinishLoad(std::move(ingested.table),
                      std::move(ingested.quarantine), ingested.timings,
                      options, watch, std::move(result));
  }

  if (options.memory_budget > 0) {
    FileChunkReader reader;
    PARPARAW_RETURN_NOT_OK_CTX(reader.Open(path), "loader.open");
    // The whole-file parse would not fit: degrade to streaming straight
    // from disk instead of failing with kResourceExhausted. LoadOptions
    // carries no transpose mode, so the envelope is the one the resolved
    // per-partition options will use (the process default).
    if (robust::EstimateParseMemory(reader.file_size(),
                                    ParseWorkingSetFactor(ParseOptions{})) >
        options.memory_budget) {
      return LoadFileStreaming(path, reader.file_size(), options);
    }
  }
  PARPARAW_ASSIGN_OR_RETURN_CTX(std::string contents, ReadFileToString(path),
                                "loader.read");
  LoadOptions serial = options;
  serial.pipelined = false;
  return BulkLoader::LoadBuffer(contents, serial);
}

}  // namespace parparaw
