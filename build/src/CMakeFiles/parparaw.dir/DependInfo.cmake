
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/instant_loading.cc" "src/CMakeFiles/parparaw.dir/baseline/instant_loading.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/baseline/instant_loading.cc.o.d"
  "/root/repo/src/baseline/quote_count.cc" "src/CMakeFiles/parparaw.dir/baseline/quote_count.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/baseline/quote_count.cc.o.d"
  "/root/repo/src/baseline/row_buffer.cc" "src/CMakeFiles/parparaw.dir/baseline/row_buffer.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/baseline/row_buffer.cc.o.d"
  "/root/repo/src/baseline/sequential_parser.cc" "src/CMakeFiles/parparaw.dir/baseline/sequential_parser.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/baseline/sequential_parser.cc.o.d"
  "/root/repo/src/columnar/column.cc" "src/CMakeFiles/parparaw.dir/columnar/column.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/column.cc.o.d"
  "/root/repo/src/columnar/dictionary.cc" "src/CMakeFiles/parparaw.dir/columnar/dictionary.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/dictionary.cc.o.d"
  "/root/repo/src/columnar/ipc.cc" "src/CMakeFiles/parparaw.dir/columnar/ipc.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/ipc.cc.o.d"
  "/root/repo/src/columnar/schema.cc" "src/CMakeFiles/parparaw.dir/columnar/schema.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/schema.cc.o.d"
  "/root/repo/src/columnar/statistics.cc" "src/CMakeFiles/parparaw.dir/columnar/statistics.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/statistics.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/CMakeFiles/parparaw.dir/columnar/table.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/table.cc.o.d"
  "/root/repo/src/columnar/types.cc" "src/CMakeFiles/parparaw.dir/columnar/types.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/columnar/types.cc.o.d"
  "/root/repo/src/convert/inference.cc" "src/CMakeFiles/parparaw.dir/convert/inference.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/convert/inference.cc.o.d"
  "/root/repo/src/convert/numeric.cc" "src/CMakeFiles/parparaw.dir/convert/numeric.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/convert/numeric.cc.o.d"
  "/root/repo/src/convert/temporal.cc" "src/CMakeFiles/parparaw.dir/convert/temporal.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/convert/temporal.cc.o.d"
  "/root/repo/src/core/bitmap_step.cc" "src/CMakeFiles/parparaw.dir/core/bitmap_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/bitmap_step.cc.o.d"
  "/root/repo/src/core/context_step.cc" "src/CMakeFiles/parparaw.dir/core/context_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/context_step.cc.o.d"
  "/root/repo/src/core/convert_step.cc" "src/CMakeFiles/parparaw.dir/core/convert_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/convert_step.cc.o.d"
  "/root/repo/src/core/css_index.cc" "src/CMakeFiles/parparaw.dir/core/css_index.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/css_index.cc.o.d"
  "/root/repo/src/core/offset_step.cc" "src/CMakeFiles/parparaw.dir/core/offset_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/offset_step.cc.o.d"
  "/root/repo/src/core/options.cc" "src/CMakeFiles/parparaw.dir/core/options.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/options.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/CMakeFiles/parparaw.dir/core/parser.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/parser.cc.o.d"
  "/root/repo/src/core/partition_step.cc" "src/CMakeFiles/parparaw.dir/core/partition_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/partition_step.cc.o.d"
  "/root/repo/src/core/tag_step.cc" "src/CMakeFiles/parparaw.dir/core/tag_step.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/core/tag_step.cc.o.d"
  "/root/repo/src/dfa/dfa.cc" "src/CMakeFiles/parparaw.dir/dfa/dfa.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/dfa/dfa.cc.o.d"
  "/root/repo/src/dfa/formats.cc" "src/CMakeFiles/parparaw.dir/dfa/formats.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/dfa/formats.cc.o.d"
  "/root/repo/src/dfa/sniffer.cc" "src/CMakeFiles/parparaw.dir/dfa/sniffer.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/dfa/sniffer.cc.o.d"
  "/root/repo/src/io/csv_writer.cc" "src/CMakeFiles/parparaw.dir/io/csv_writer.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/io/csv_writer.cc.o.d"
  "/root/repo/src/io/file.cc" "src/CMakeFiles/parparaw.dir/io/file.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/io/file.cc.o.d"
  "/root/repo/src/json/json_lines.cc" "src/CMakeFiles/parparaw.dir/json/json_lines.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/json/json_lines.cc.o.d"
  "/root/repo/src/loader/bulk_loader.cc" "src/CMakeFiles/parparaw.dir/loader/bulk_loader.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/loader/bulk_loader.cc.o.d"
  "/root/repo/src/mfira/swar.cc" "src/CMakeFiles/parparaw.dir/mfira/swar.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/mfira/swar.cc.o.d"
  "/root/repo/src/parallel/radix_sort.cc" "src/CMakeFiles/parparaw.dir/parallel/radix_sort.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/parallel/radix_sort.cc.o.d"
  "/root/repo/src/parallel/thread_pool.cc" "src/CMakeFiles/parparaw.dir/parallel/thread_pool.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/parallel/thread_pool.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/parparaw.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/pushdown.cc" "src/CMakeFiles/parparaw.dir/query/pushdown.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/query/pushdown.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/parparaw.dir/query/query.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/query/query.cc.o.d"
  "/root/repo/src/query/raw_filter.cc" "src/CMakeFiles/parparaw.dir/query/raw_filter.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/query/raw_filter.cc.o.d"
  "/root/repo/src/query/sql.cc" "src/CMakeFiles/parparaw.dir/query/sql.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/query/sql.cc.o.d"
  "/root/repo/src/sim/device_model.cc" "src/CMakeFiles/parparaw.dir/sim/device_model.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/sim/device_model.cc.o.d"
  "/root/repo/src/sim/gpu_sim.cc" "src/CMakeFiles/parparaw.dir/sim/gpu_sim.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/sim/gpu_sim.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/parparaw.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/sim/timeline.cc.o.d"
  "/root/repo/src/stream/streaming_parser.cc" "src/CMakeFiles/parparaw.dir/stream/streaming_parser.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/stream/streaming_parser.cc.o.d"
  "/root/repo/src/text/unicode.cc" "src/CMakeFiles/parparaw.dir/text/unicode.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/text/unicode.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/parparaw.dir/util/status.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/parparaw.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/parparaw.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/parparaw.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
