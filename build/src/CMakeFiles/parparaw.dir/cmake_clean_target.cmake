file(REMOVE_RECURSE
  "libparparaw.a"
)
