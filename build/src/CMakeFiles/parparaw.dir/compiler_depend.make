# Empty compiler generated dependencies file for parparaw.
# This may be replaced when dependencies are built.
