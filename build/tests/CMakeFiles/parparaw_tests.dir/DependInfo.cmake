
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/parparaw_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/capabilities_test.cc" "tests/CMakeFiles/parparaw_tests.dir/capabilities_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/capabilities_test.cc.o.d"
  "/root/repo/tests/columnar_test.cc" "tests/CMakeFiles/parparaw_tests.dir/columnar_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/columnar_test.cc.o.d"
  "/root/repo/tests/conformance_test.cc" "tests/CMakeFiles/parparaw_tests.dir/conformance_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/conformance_test.cc.o.d"
  "/root/repo/tests/context_step_test.cc" "tests/CMakeFiles/parparaw_tests.dir/context_step_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/context_step_test.cc.o.d"
  "/root/repo/tests/convert_test.cc" "tests/CMakeFiles/parparaw_tests.dir/convert_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/convert_test.cc.o.d"
  "/root/repo/tests/device_model_test.cc" "tests/CMakeFiles/parparaw_tests.dir/device_model_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/device_model_test.cc.o.d"
  "/root/repo/tests/dfa_test.cc" "tests/CMakeFiles/parparaw_tests.dir/dfa_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/dfa_test.cc.o.d"
  "/root/repo/tests/format_extensions_test.cc" "tests/CMakeFiles/parparaw_tests.dir/format_extensions_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/format_extensions_test.cc.o.d"
  "/root/repo/tests/formats_test.cc" "tests/CMakeFiles/parparaw_tests.dir/formats_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/formats_test.cc.o.d"
  "/root/repo/tests/gpu_sim_test.cc" "tests/CMakeFiles/parparaw_tests.dir/gpu_sim_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/gpu_sim_test.cc.o.d"
  "/root/repo/tests/hardening_test.cc" "tests/CMakeFiles/parparaw_tests.dir/hardening_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/hardening_test.cc.o.d"
  "/root/repo/tests/inference_test.cc" "tests/CMakeFiles/parparaw_tests.dir/inference_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/inference_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/parparaw_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/ipc_test.cc" "tests/CMakeFiles/parparaw_tests.dir/ipc_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/ipc_test.cc.o.d"
  "/root/repo/tests/json_test.cc" "tests/CMakeFiles/parparaw_tests.dir/json_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/json_test.cc.o.d"
  "/root/repo/tests/loader_test.cc" "tests/CMakeFiles/parparaw_tests.dir/loader_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/loader_test.cc.o.d"
  "/root/repo/tests/mfira_test.cc" "tests/CMakeFiles/parparaw_tests.dir/mfira_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/mfira_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/parparaw_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/offsets_test.cc" "tests/CMakeFiles/parparaw_tests.dir/offsets_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/offsets_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parparaw_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/parparaw_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/parparaw_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/parparaw_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/pushdown_test.cc" "tests/CMakeFiles/parparaw_tests.dir/pushdown_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/pushdown_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/parparaw_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/roundtrip_test.cc" "tests/CMakeFiles/parparaw_tests.dir/roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/roundtrip_test.cc.o.d"
  "/root/repo/tests/sniffer_test.cc" "tests/CMakeFiles/parparaw_tests.dir/sniffer_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/sniffer_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/parparaw_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/statistics_test.cc" "tests/CMakeFiles/parparaw_tests.dir/statistics_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/statistics_test.cc.o.d"
  "/root/repo/tests/streaming_test.cc" "tests/CMakeFiles/parparaw_tests.dir/streaming_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/streaming_test.cc.o.d"
  "/root/repo/tests/swar_test.cc" "tests/CMakeFiles/parparaw_tests.dir/swar_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/swar_test.cc.o.d"
  "/root/repo/tests/tagging_test.cc" "tests/CMakeFiles/parparaw_tests.dir/tagging_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/tagging_test.cc.o.d"
  "/root/repo/tests/timeline_test.cc" "tests/CMakeFiles/parparaw_tests.dir/timeline_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/timeline_test.cc.o.d"
  "/root/repo/tests/unicode_test.cc" "tests/CMakeFiles/parparaw_tests.dir/unicode_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/unicode_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/parparaw_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/parparaw_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/parparaw_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parparaw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
