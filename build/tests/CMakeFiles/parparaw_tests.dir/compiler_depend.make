# Empty compiler generated dependencies file for parparaw_tests.
# This may be replaced when dependencies are built.
