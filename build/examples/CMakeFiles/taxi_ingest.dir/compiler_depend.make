# Empty compiler generated dependencies file for taxi_ingest.
# This may be replaced when dependencies are built.
