file(REMOVE_RECURSE
  "CMakeFiles/taxi_ingest.dir/taxi_ingest.cpp.o"
  "CMakeFiles/taxi_ingest.dir/taxi_ingest.cpp.o.d"
  "taxi_ingest"
  "taxi_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
