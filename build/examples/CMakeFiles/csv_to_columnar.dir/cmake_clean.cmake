file(REMOVE_RECURSE
  "CMakeFiles/csv_to_columnar.dir/csv_to_columnar.cpp.o"
  "CMakeFiles/csv_to_columnar.dir/csv_to_columnar.cpp.o.d"
  "csv_to_columnar"
  "csv_to_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_to_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
