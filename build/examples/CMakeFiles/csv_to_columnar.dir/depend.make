# Empty dependencies file for csv_to_columnar.
# This may be replaced when dependencies are built.
