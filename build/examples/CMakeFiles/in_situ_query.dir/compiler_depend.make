# Empty compiler generated dependencies file for in_situ_query.
# This may be replaced when dependencies are built.
