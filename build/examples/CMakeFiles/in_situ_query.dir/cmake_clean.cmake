file(REMOVE_RECURSE
  "CMakeFiles/in_situ_query.dir/in_situ_query.cpp.o"
  "CMakeFiles/in_situ_query.dir/in_situ_query.cpp.o.d"
  "in_situ_query"
  "in_situ_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in_situ_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
