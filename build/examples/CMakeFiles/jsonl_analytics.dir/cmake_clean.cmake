file(REMOVE_RECURSE
  "CMakeFiles/jsonl_analytics.dir/jsonl_analytics.cpp.o"
  "CMakeFiles/jsonl_analytics.dir/jsonl_analytics.cpp.o.d"
  "jsonl_analytics"
  "jsonl_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsonl_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
