# Empty compiler generated dependencies file for jsonl_analytics.
# This may be replaced when dependencies are built.
