file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_swar.dir/bench_table2_swar.cc.o"
  "CMakeFiles/bench_table2_swar.dir/bench_table2_swar.cc.o.d"
  "bench_table2_swar"
  "bench_table2_swar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_swar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
