file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_sim.dir/bench_gpu_sim.cc.o"
  "CMakeFiles/bench_gpu_sim.dir/bench_gpu_sim.cc.o.d"
  "bench_gpu_sim"
  "bench_gpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
