file(REMOVE_RECURSE
  "CMakeFiles/bench_raw_filter.dir/bench_raw_filter.cc.o"
  "CMakeFiles/bench_raw_filter.dir/bench_raw_filter.cc.o.d"
  "bench_raw_filter"
  "bench_raw_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raw_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
