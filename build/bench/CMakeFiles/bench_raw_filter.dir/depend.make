# Empty dependencies file for bench_raw_filter.
# This may be replaced when dependencies are built.
