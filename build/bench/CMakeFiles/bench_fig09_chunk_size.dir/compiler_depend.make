# Empty compiler generated dependencies file for bench_fig09_chunk_size.
# This may be replaced when dependencies are built.
