# Empty compiler generated dependencies file for bench_convert_types.
# This may be replaced when dependencies are built.
