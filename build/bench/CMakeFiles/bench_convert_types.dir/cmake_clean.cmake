file(REMOVE_RECURSE
  "CMakeFiles/bench_convert_types.dir/bench_convert_types.cc.o"
  "CMakeFiles/bench_convert_types.dir/bench_convert_types.cc.o.d"
  "bench_convert_types"
  "bench_convert_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convert_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
