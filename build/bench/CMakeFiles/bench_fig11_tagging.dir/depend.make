# Empty dependencies file for bench_fig11_tagging.
# This may be replaced when dependencies are built.
