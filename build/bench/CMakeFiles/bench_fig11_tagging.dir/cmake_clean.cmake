file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tagging.dir/bench_fig11_tagging.cc.o"
  "CMakeFiles/bench_fig11_tagging.dir/bench_fig11_tagging.cc.o.d"
  "bench_fig11_tagging"
  "bench_fig11_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
