file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_primitives.dir/bench_ablation_primitives.cc.o"
  "CMakeFiles/bench_ablation_primitives.dir/bench_ablation_primitives.cc.o.d"
  "bench_ablation_primitives"
  "bench_ablation_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
