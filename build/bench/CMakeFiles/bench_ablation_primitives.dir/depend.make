# Empty dependencies file for bench_ablation_primitives.
# This may be replaced when dependencies are built.
