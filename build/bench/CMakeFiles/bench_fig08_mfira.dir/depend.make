# Empty dependencies file for bench_fig08_mfira.
# This may be replaced when dependencies are built.
