file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_mfira.dir/bench_fig08_mfira.cc.o"
  "CMakeFiles/bench_fig08_mfira.dir/bench_fig08_mfira.cc.o.d"
  "bench_fig08_mfira"
  "bench_fig08_mfira.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_mfira.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
