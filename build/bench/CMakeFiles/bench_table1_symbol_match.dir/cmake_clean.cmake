file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_symbol_match.dir/bench_table1_symbol_match.cc.o"
  "CMakeFiles/bench_table1_symbol_match.dir/bench_table1_symbol_match.cc.o.d"
  "bench_table1_symbol_match"
  "bench_table1_symbol_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_symbol_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
