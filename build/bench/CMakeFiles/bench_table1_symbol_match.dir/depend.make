# Empty dependencies file for bench_table1_symbol_match.
# This may be replaced when dependencies are built.
