#include <gtest/gtest.h>

#include "core/parser.h"
#include "query/predicate.h"
#include "query/query.h"
#include "query/raw_filter.h"

namespace parparaw {
namespace {

Table MakeOrders() {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("customer", DataType::String()));
  options.schema.AddField(Field("amount", DataType::Float64()));
  options.schema.AddField(Field("day", DataType::Date32()));
  auto result = Parser::Parse(
      "1,alice,10.5,2023-01-01\n"
      "2,bob,3.25,2023-01-02\n"
      "3,alice,7.0,2023-01-02\n"
      "4,carol,,2023-01-03\n"
      "5,bob,12.0,2023-01-03\n",
      options);
  EXPECT_TRUE(result.ok());
  return result->table;
}

TEST(PredicateTest, NumericComparisons) {
  const Table table = MakeOrders();
  auto ge = EvaluatePredicate(table, {2, CompareOp::kGe, "7"});
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(*ge, (std::vector<uint8_t>{1, 0, 1, 0, 1}));
  auto lt = EvaluatePredicate(table, {0, CompareOp::kLt, "3"});
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(*lt, (std::vector<uint8_t>{1, 1, 0, 0, 0}));
  auto ne = EvaluatePredicate(table, {0, CompareOp::kNe, "2"});
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(*ne, (std::vector<uint8_t>{1, 0, 1, 1, 1}));
}

TEST(PredicateTest, DateLiteralBinding) {
  const Table table = MakeOrders();
  auto eq = EvaluatePredicate(table, {3, CompareOp::kEq, "2023-01-02"});
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, (std::vector<uint8_t>{0, 1, 1, 0, 0}));
  // Malformed literal is a TypeError, not a crash.
  auto bad = EvaluatePredicate(table, {3, CompareOp::kEq, "yesterday"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(PredicateTest, StringOperators) {
  const Table table = MakeOrders();
  auto eq = EvaluatePredicate(table, {1, CompareOp::kEq, "alice"});
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, (std::vector<uint8_t>{1, 0, 1, 0, 0}));
  auto contains = EvaluatePredicate(table, {1, CompareOp::kContains, "aro"});
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(*contains, (std::vector<uint8_t>{0, 0, 0, 1, 0}));
  auto prefix = EvaluatePredicate(table, {1, CompareOp::kStartsWith, "b"});
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, (std::vector<uint8_t>{0, 1, 0, 0, 1}));
  // contains on a numeric column is a type error.
  EXPECT_FALSE(EvaluatePredicate(table, {0, CompareOp::kContains, "1"}).ok());
}

TEST(PredicateTest, NullHandling) {
  const Table table = MakeOrders();
  // Row 4's amount is NULL: it never matches value comparisons.
  auto ge = EvaluatePredicate(table, {2, CompareOp::kGe, "0"});
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ((*ge)[3], 0);
  auto is_null = EvaluatePredicate(table, {2, CompareOp::kIsNull});
  ASSERT_TRUE(is_null.ok());
  EXPECT_EQ(*is_null, (std::vector<uint8_t>{0, 0, 0, 1, 0}));
  auto not_null = EvaluatePredicate(table, {2, CompareOp::kIsNotNull});
  ASSERT_TRUE(not_null.ok());
  EXPECT_EQ(*not_null, (std::vector<uint8_t>{1, 1, 1, 0, 1}));
}

TEST(PredicateTest, ConjunctionAndBounds) {
  const Table table = MakeOrders();
  Filter filter;
  filter.conjuncts.push_back({1, CompareOp::kEq, "bob"});
  filter.conjuncts.push_back({2, CompareOp::kGt, "5"});
  auto selection = EvaluateFilter(table, filter);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(*selection, (std::vector<uint8_t>{0, 0, 0, 0, 1}));
  EXPECT_FALSE(EvaluatePredicate(table, {9, CompareOp::kEq, "x"}).ok());
}

TEST(QueryTest, FilterAndProject) {
  const Table table = MakeOrders();
  QuerySpec spec;
  spec.filter.conjuncts.push_back({2, CompareOp::kGe, "7"});
  spec.projection = {1, 2};
  auto result = RunQuery(table, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows, 3);
  EXPECT_EQ(result->num_columns(), 2);
  EXPECT_EQ(result->columns[0].StringValue(0), "alice");
  EXPECT_EQ(result->columns[0].StringValue(2), "bob");
  EXPECT_DOUBLE_EQ(result->columns[1].Value<double>(2), 12.0);
}

TEST(QueryTest, GlobalAggregates) {
  const Table table = MakeOrders();
  QuerySpec spec;
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kCount, 2),
                     Aggregate(AggKind::kSum, 2),
                     Aggregate(AggKind::kMin, 2),
                     Aggregate(AggKind::kMax, 2),
                     Aggregate(AggKind::kMean, 2)};
  auto result = RunQuery(table, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows, 1);
  EXPECT_EQ(result->columns[0].Value<int64_t>(0), 5);   // count(*)
  EXPECT_EQ(result->columns[1].Value<int64_t>(0), 4);   // count(amount)
  EXPECT_DOUBLE_EQ(result->columns[2].Value<double>(0), 32.75);
  EXPECT_DOUBLE_EQ(result->columns[3].Value<double>(0), 3.25);
  EXPECT_DOUBLE_EQ(result->columns[4].Value<double>(0), 12.0);
  EXPECT_DOUBLE_EQ(result->columns[5].Value<double>(0), 32.75 / 4);
  EXPECT_EQ(result->schema.field(0).name, "count(*)");
  EXPECT_EQ(result->schema.field(2).name, "sum(amount)");
}

TEST(QueryTest, GroupByWithFilter) {
  const Table table = MakeOrders();
  QuerySpec spec;
  spec.filter.conjuncts.push_back({2, CompareOp::kIsNotNull});
  spec.group_by = 1;  // customer
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kSum, 2)};
  auto result = RunQuery(table, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows, 2);  // carol filtered out (NULL amount)
  // std::map keys are sorted: alice, bob.
  EXPECT_EQ(result->columns[0].StringValue(0), "alice");
  EXPECT_EQ(result->columns[1].Value<int64_t>(0), 2);
  EXPECT_DOUBLE_EQ(result->columns[2].Value<double>(0), 17.5);
  EXPECT_EQ(result->columns[0].StringValue(1), "bob");
  EXPECT_DOUBLE_EQ(result->columns[2].Value<double>(1), 15.25);
}

TEST(QueryTest, AggregateOverStringIsTypeError) {
  const Table table = MakeOrders();
  QuerySpec spec;
  spec.aggregates = {Aggregate(AggKind::kSum, 1)};
  EXPECT_FALSE(RunQuery(table, spec).ok());
}

TEST(QueryTest, EmptySelection) {
  const Table table = MakeOrders();
  QuerySpec spec;
  spec.filter.conjuncts.push_back({0, CompareOp::kGt, "100"});
  auto filtered = RunQuery(table, spec);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows, 0);
  spec.aggregates = {Aggregate(AggKind::kCountAll)};
  auto agg = RunQuery(table, spec);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->num_rows, 0);  // no groups at all
}

TEST(RawFilterTest, KeepsOnlyMatchingLines) {
  RawFilterStats stats;
  auto filtered = RawFilterLines(
      "1,keep me\n2,drop\n3,also keep me\n4,nope\n", "keep", &stats);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(*filtered, "1,keep me\n3,also keep me\n");
  EXPECT_EQ(stats.input_lines, 4);
  EXPECT_EQ(stats.kept_lines, 2);
  EXPECT_LT(stats.Selectivity(), 1.0);
}

TEST(RawFilterTest, NoTrailingNewlineAndEmpty) {
  auto filtered = RawFilterLines("a match", "match", nullptr);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(*filtered, "a match");
  auto none = RawFilterLines("x\ny\n", "match", nullptr);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(RawFilterLines("x\n", "", nullptr).ok());
}

TEST(RawFilterTest, FalsePositivesResolvedByExactPredicate) {
  // The prefilter keeps any line containing "42"; the exact predicate then
  // keeps only amount == 42.
  const std::string csv = "1,42\n2,142\n3,9\n4,42\n";
  RawFilterStats stats;
  auto filtered = RawFilterLines(csv, "42", &stats);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(stats.kept_lines, 3);  // includes the 142 false positive

  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("amount", DataType::Int64()));
  auto parsed = Parser::Parse(*filtered, options);
  ASSERT_TRUE(parsed.ok());
  QuerySpec spec;
  spec.filter.conjuncts.push_back({1, CompareOp::kEq, "42"});
  auto result = RunQuery(parsed->table, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows, 2);
  EXPECT_EQ(result->columns[0].Value<int64_t>(0), 1);
  EXPECT_EQ(result->columns[0].Value<int64_t>(1), 4);
}

}  // namespace
}  // namespace parparaw
