#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dialect/dialect.h"
#include "robust/failpoint.h"

// Property tests for the dialect minimiser (dialect/automaton.cc): the
// minimised automaton accepts the same language with the same SymbolFlags
// on every transition (checked both by the product-construction proof and
// by direct lockstep walks), minimisation is a fixpoint, genuinely
// redundant states merge, and malformed specs are rejected with an
// actionable kInvalidArgument before any DFA is built.

namespace parparaw {
namespace {

using dialect::Automaton;
using dialect::CheckEquivalent;
using dialect::CompileDialect;
using dialect::DialectSpec;
using dialect::EquivalenceResult;
using dialect::EscapeStyle;
using dialect::Minimize;

/// Deterministic xorshift (same shape as the differential harnesses).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

/// A seeded random — but always valid — DialectSpec spanning the whole
/// option space: delimiters, multi-byte record delimiters, quote and
/// escape conventions, comments, fixed widths.
DialectSpec RandomSpec(uint64_t seed) {
  Rng rng(seed);
  DialectSpec spec;
  spec.name = "random-" + std::to_string(seed);
  if (rng.Next() % 5 == 0) {
    // Fixed-width: 1-4 fields of width 1-6.
    const int fields = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < fields; ++f) {
      spec.fixed_widths.push_back(1 + static_cast<int>(rng.Next() % 6));
    }
    spec.quote = 0;
    if (rng.Next() % 3 == 0) spec.record_delimiter = "\r\n";
    return spec;
  }
  static const uint8_t kFieldDelims[] = {',', ';', '\t', '|', ' ', 0};
  static const char* const kRecordDelims[] = {"\n", "\r\n", "%$", "EOL"};
  spec.field_delimiter = kFieldDelims[rng.Next() % 6];
  spec.record_delimiter = kRecordDelims[rng.Next() % 4];
  spec.quote = (rng.Next() % 4 == 0) ? 0 : '"';
  spec.escape_style = (rng.Next() % 2 == 0) ? EscapeStyle::kDoubledQuote
                                            : EscapeStyle::kBackslash;
  spec.comment = (rng.Next() % 3 == 0) ? '#' : 0;
  spec.skip_empty_lines = rng.Next() % 2 == 0;
  spec.strict_quotes = rng.Next() % 2 == 0;
  spec.verbatim_quotes = spec.quote != 0 && rng.Next() % 5 == 0;
  // "EOL" contains no special byte for the choices above; "%$" and "\r\n"
  // likewise. Field delimiter ' ' never collides with them either.
  return spec;
}

/// A seeded input biased towards the spec's own special bytes so runs
/// visit quoted context, comments, delimiter chains and the trap state.
std::string RandomInput(const DialectSpec& spec, uint64_t seed,
                        size_t size) {
  Rng rng(seed);
  std::string special;
  if (spec.field_delimiter != 0) special.push_back(spec.field_delimiter);
  special += spec.record_delimiter;
  if (spec.quote != 0) special.push_back(spec.quote);
  if (spec.comment != 0) special.push_back(spec.comment);
  if (spec.escape_style == EscapeStyle::kBackslash) {
    special.push_back(spec.escape_char);
  }
  std::string out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    if (!special.empty() && rng.Next() % 3 == 0) {
      out.push_back(special[rng.Next() % special.size()]);
    } else if (rng.Next() % 7 == 0) {
      out.push_back(static_cast<char>(rng.Next() & 0xFF));
    } else {
      out.push_back(static_cast<char>('a' + rng.Next() % 26));
    }
  }
  return out;
}

TEST(DialectMinimizeTest, MinimizedProvedEquivalentToOriginal) {
  int compiled = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const DialectSpec spec = RandomSpec(seed);
    if (!spec.Validate().ok()) continue;
    auto wide = CompileDialect(spec);
    ASSERT_TRUE(wide.ok()) << spec.name << ": " << wide.status().ToString();
    auto minimized = Minimize(*wide, nullptr);
    ASSERT_TRUE(minimized.ok()) << spec.name;
    EXPECT_LE(minimized->num_states, wide->num_states) << spec.name;
    const EquivalenceResult proof = CheckEquivalent(*wide, *minimized);
    ASSERT_TRUE(proof.equivalent)
        << spec.name << ": " << proof.detail << " (witness: \""
        << proof.witness << "\")";
    ++compiled;
  }
  // The generator must actually exercise the space, not skip everything.
  EXPECT_GT(compiled, 150);
}

TEST(DialectMinimizeTest, MinimizeIsAFixpoint) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const DialectSpec spec = RandomSpec(seed * 31 + 7);
    if (!spec.Validate().ok()) continue;
    auto once = Minimize(*CompileDialect(spec), nullptr);
    ASSERT_TRUE(once.ok());
    auto twice = Minimize(*once, nullptr);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(once->num_states, twice->num_states) << spec.name;
    EXPECT_TRUE(CheckEquivalent(*once, *twice).equivalent) << spec.name;
  }
}

TEST(DialectMinimizeTest, SymbolFlagsPreservedAlongLockstepRuns) {
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const DialectSpec spec = RandomSpec(seed * 13 + 3);
    if (!spec.Validate().ok()) continue;
    auto wide = CompileDialect(spec);
    auto minimized = Minimize(*wide, nullptr);
    ASSERT_TRUE(wide.ok() && minimized.ok());
    const std::string input = RandomInput(spec, seed, 96 + seed % 128);
    int sw = wide->start;
    int sm = minimized->start;
    for (size_t i = 0; i < input.size(); ++i) {
      const uint8_t byte = static_cast<uint8_t>(input[i]);
      ASSERT_EQ(wide->FlagsFor(sw, byte), minimized->FlagsFor(sm, byte))
          << spec.name << " offset " << i;
      sw = wide->Next(sw, byte);
      sm = minimized->Next(sm, byte);
      ASSERT_EQ(wide->accepting[sw] != 0, minimized->accepting[sm] != 0)
          << spec.name << " offset " << i;
      ASSERT_EQ(wide->mid_record[sw] != 0, minimized->mid_record[sm] != 0)
          << spec.name << " offset " << i;
    }
  }
}

TEST(DialectMinimizeTest, MergesDuplicatedStates) {
  auto wide = CompileDialect(DialectSpec{});
  ASSERT_TRUE(wide.ok());
  auto minimal = Minimize(*wide, nullptr);
  ASSERT_TRUE(minimal.ok());

  // Clone one non-start state and reroute half its inbound edges to the
  // copy: the automaton grows but its behaviour cannot change, so the
  // minimiser must collapse back to the original count.
  Automaton bloated = *wide;
  const int victim = (bloated.start + 1) % bloated.num_states;
  const int clone = bloated.num_states++;
  bloated.names.push_back(bloated.names[victim] + "'");
  bloated.accepting.push_back(bloated.accepting[victim]);
  bloated.mid_record.push_back(bloated.mid_record[victim]);
  bloated.next.insert(
      bloated.next.end(), bloated.next.begin() + victim * 256,
      bloated.next.begin() + (victim + 1) * 256);
  bloated.flags.insert(
      bloated.flags.end(), bloated.flags.begin() + victim * 256,
      bloated.flags.begin() + (victim + 1) * 256);
  bool reroute = false;
  for (size_t i = 0; i < bloated.next.size() - 256; ++i) {
    if (bloated.next[i] == victim && (reroute = !reroute)) {
      bloated.next[i] = clone;
    }
  }

  auto collapsed = Minimize(bloated, nullptr);
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(collapsed->num_states, minimal->num_states);
  EXPECT_TRUE(CheckEquivalent(*collapsed, *wide).equivalent);
}

TEST(DialectMinimizeTest, CompileFailpointsPropagate) {
  using robust::FailpointRegistry;
  FailpointRegistry& registry = FailpointRegistry::Instance();
  for (const char* site : {"dialect.compile", "dialect.minimise"}) {
    registry.Arm(site, robust::CountTrigger(1));
    auto result = dialect::Compile(DialectSpec{});
    registry.Disarm(site);
    ASSERT_FALSE(result.ok()) << site;
    ASSERT_NE(result.status().code(), StatusCode::kOk) << site;
    ASSERT_FALSE(result.status().message().empty()) << site;
  }
  // Disarmed, the same spec compiles.
  EXPECT_TRUE(dialect::Compile(DialectSpec{}).ok());
}

TEST(DialectMinimizeTest, MalformedSpecsRejectedWithInvalidArgument) {
  std::vector<DialectSpec> bad;

  {
    DialectSpec s;  // empty record delimiter
    s.record_delimiter.clear();
    bad.push_back(s);
  }
  {
    DialectSpec s;  // over the 4-byte delimiter bound
    s.record_delimiter = "ABCDE";
    bad.push_back(s);
  }
  {
    DialectSpec s;  // self-overlapping multi-byte delimiter
    s.record_delimiter = "\n\n";
    bad.push_back(s);
  }
  {
    DialectSpec s;  // border of length 1 ("aba")
    s.record_delimiter = "aba";
    bad.push_back(s);
  }
  {
    DialectSpec s;  // record-delimiter byte doubles as field delimiter
    s.record_delimiter = ";x";
    s.field_delimiter = ';';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // record-delimiter byte doubles as the quote
    s.record_delimiter = "\"x";
    bad.push_back(s);
  }
  {
    DialectSpec s;  // quote == field delimiter
    s.quote = ',';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // comment == field delimiter
    s.comment = ',';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // comment == quote
    s.comment = '"';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // backslash style with a zero escape byte
    s.escape_style = EscapeStyle::kBackslash;
    s.escape_char = 0;
    bad.push_back(s);
  }
  {
    DialectSpec s;  // escape collides with the quote
    s.escape_style = EscapeStyle::kBackslash;
    s.escape_char = '"';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // verbatim quoting without a quote byte
    s.quote = 0;
    s.verbatim_quotes = true;
    bad.push_back(s);
  }
  {
    DialectSpec s;  // non-positive fixed width
    s.fixed_widths = {3, 0, 2};
    bad.push_back(s);
  }
  {
    DialectSpec s;  // fixed-width record over the 4096-byte bound
    s.fixed_widths = {4000, 1000};
    bad.push_back(s);
  }
  {
    DialectSpec s;  // fixed-width with quoting
    s.fixed_widths = {2, 2};
    s.quote = '"';
    bad.push_back(s);
  }
  {
    DialectSpec s;  // fixed-width with skip_empty_lines
    s.fixed_widths = {2, 2};
    s.quote = 0;
    s.skip_empty_lines = true;
    bad.push_back(s);
  }

  for (size_t i = 0; i < bad.size(); ++i) {
    const Status direct = bad[i].Validate();
    EXPECT_EQ(direct.code(), StatusCode::kInvalidArgument)
        << "case " << i << ": " << direct.ToString();
    EXPECT_FALSE(direct.message().empty()) << "case " << i;
    // Every compile entry point validates first: same rejection, no DFA.
    const auto compiled = dialect::Compile(bad[i]);
    ASSERT_FALSE(compiled.ok()) << "case " << i;
    EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument)
        << "case " << i;
  }
}

}  // namespace
}  // namespace parparaw
