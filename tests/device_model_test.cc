#include <gtest/gtest.h>

#include "sim/device_model.h"
#include "sim/pcie_model.h"

namespace parparaw {
namespace {

WorkCounters YelpLikeWork(int64_t input_bytes) {
  WorkCounters work;
  work.input_bytes = input_bytes;
  work.parse_bytes_read = input_bytes;
  work.dfa_transitions = input_bytes * 6;
  work.scan_elements = input_bytes / 31 * 3;
  work.tag_bytes_written = input_bytes * 9;  // record-tag mode
  work.sort_passes = 1;
  work.sort_bytes_moved = input_bytes * 9;
  work.convert_bytes = input_bytes;
  work.output_bytes = input_bytes;
  return work;
}

TEST(DeviceModelTest, SpecDefaultsMatchTitanX) {
  DeviceSpec spec;
  EXPECT_EQ(spec.cores, 3584);
  EXPECT_NEAR(spec.clock_ghz, 1.417, 1e-9);
  EXPECT_NE(spec.ToString().find("3584 cores"), std::string::npos);
}

TEST(DeviceModelTest, MemoryAndComputeScaleLinearly) {
  DeviceModel model;
  EXPECT_NEAR(model.MemorySeconds(2'000'000) / model.MemorySeconds(1'000'000),
              2.0, 1e-9);
  EXPECT_NEAR(
      model.ComputeSeconds(2'000'000, 2.0) / model.ComputeSeconds(1'000'000, 2.0),
      2.0, 1e-9);
  EXPECT_GT(model.LaunchSeconds(10), model.LaunchSeconds(1));
}

TEST(DeviceModelTest, ModeledRateInPaperBallpark) {
  // Fig. 10: ParPaRaw peaks around 9.7-14.2 GB/s on-GPU. The model should
  // land in the right order of magnitude for a 512 MB yelp-like parse.
  DeviceModel model;
  const WorkCounters work = YelpLikeWork(512ll << 20);
  const double rate = model.ModelParsingRateGbps(work, 9, 6);
  EXPECT_GT(rate, 3.0);
  EXPECT_LT(rate, 30.0);
}

TEST(DeviceModelTest, SmallInputsPayKernelLaunchOverhead) {
  // §5.1: for tiny inputs the per-column kernel launches dominate, so the
  // rate collapses — the model must reproduce that shape.
  DeviceModel model;
  const double rate_1mb =
      model.ModelParsingRateGbps(YelpLikeWork(1 << 20), 9, 6);
  const double rate_512mb =
      model.ModelParsingRateGbps(YelpLikeWork(512ll << 20), 9, 6);
  EXPECT_LT(rate_1mb, rate_512mb);
  EXPECT_LT(rate_1mb, 0.7 * rate_512mb);
}

TEST(DeviceModelTest, MoreStatesMoreParseTime) {
  DeviceModel model;
  WorkCounters w6 = YelpLikeWork(256 << 20);
  WorkCounters w12 = w6;
  w12.dfa_transitions *= 2;
  EXPECT_GT(model.ModelPipeline(w12, 9, 12).parse_ms,
            model.ModelPipeline(w6, 9, 6).parse_ms * 1.2);
}

TEST(PcieModelTest, FullDuplexDirectionsIndependent) {
  PcieModel pcie;
  const int64_t gb = 1ll << 30;
  // ~89 ms for 1 GB at 12 GB/s (decimal).
  EXPECT_NEAR(pcie.H2dSeconds(gb), 1.073741824 / 12.0, 1e-3);
  EXPECT_NEAR(pcie.D2hSeconds(gb), 1.073741824 / 12.0, 1e-3);
  // Latency floor for tiny transfers.
  EXPECT_GE(pcie.H2dSeconds(1), 10e-6);
}

}  // namespace
}  // namespace parparaw
