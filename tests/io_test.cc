#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "baseline/sequential_parser.h"
#include "io/csv_writer.h"
#include "io/file.h"

namespace parparaw {
namespace {

Table MakeSampleTable() {
  Table table;
  table.schema.AddField(Field("id", DataType::Int64()));
  table.schema.AddField(Field("name", DataType::String()));
  table.schema.AddField(Field("score", DataType::Float64()));
  Column id(DataType::Int64());
  id.AppendValue<int64_t>(1);
  id.AppendValue<int64_t>(2);
  id.AppendNull();
  Column name(DataType::String());
  name.AppendString("plain");
  name.AppendString("needs, \"quoting\"\nhere");
  name.AppendString("");
  Column score(DataType::Float64());
  score.AppendValue<double>(0.5);
  score.AppendNull();
  score.AppendValue<double>(-3.25);
  table.columns = {std::move(id), std::move(name), std::move(score)};
  table.num_rows = 3;
  table.rejected.assign(3, 0);
  return table;
}

TEST(CsvWriterTest, QuotesOnlyWhenNeeded) {
  auto csv = WriteCsv(MakeSampleTable());
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv,
            "1,plain,0.5\n"
            "2,\"needs, \"\"quoting\"\"\nhere\",\n"
            ",,-3.25\n");
}

TEST(CsvWriterTest, HeaderAndQuoteAll) {
  CsvWriteOptions options;
  options.header = true;
  options.quote_all = true;
  auto csv = WriteCsv(MakeSampleTable(), options);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->substr(0, csv->find('\n')), "\"id\",\"name\",\"score\"");
}

TEST(CsvWriterTest, NullLiteral) {
  CsvWriteOptions options;
  options.null_literal = "NA";
  auto csv = WriteCsv(MakeSampleTable(), options);
  ASSERT_TRUE(csv.ok());
  EXPECT_NE(csv->find(",NA\n"), std::string::npos);
  EXPECT_NE(csv->find("NA,"), std::string::npos);
}

TEST(CsvWriterTest, CustomDelimiters) {
  CsvWriteOptions options;
  options.field_delimiter = '\t';
  auto csv = WriteCsv(MakeSampleTable(), options);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->substr(0, 8), "1\tplain\t");
  // Commas no longer force quoting, but the embedded newline still does.
  EXPECT_NE(csv->find("\"needs, \"\"quoting\"\"\nhere\""), std::string::npos);

  options.field_delimiter = '\n';
  EXPECT_FALSE(WriteCsv(MakeSampleTable(), options).ok());
}

TEST(CsvWriterTest, TemporalFormatting) {
  Table table;
  table.schema.AddField(Field("d", DataType::Date32()));
  table.schema.AddField(Field("ts", DataType::TimestampMicros()));
  Column d(DataType::Date32());
  d.AppendValue<int32_t>(0);
  d.AppendValue<int32_t>(17697);
  Column ts(DataType::TimestampMicros());
  ts.AppendValue<int64_t>(0);
  ts.AppendValue<int64_t>(1500000);  // 1.5 s
  table.columns = {std::move(d), std::move(ts)};
  table.num_rows = 2;
  table.rejected.assign(2, 0);
  auto csv = WriteCsv(table);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv,
            "1970-01-01,1970-01-01 00:00:00\n"
            "2018-06-15,1970-01-01 00:00:01.500000\n");
}

TEST(FileTest, WriteAndReadBack) {
  const std::string path = "/tmp/parparaw_io_test.txt";
  const std::string payload = "hello\nworld\n";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, payload);
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileIsIoError) {
  auto result = ReadFileToString("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(FileTest, ChunkReaderWalksWholeFile) {
  const std::string path = "/tmp/parparaw_chunk_test.txt";
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload += "line " + std::to_string(i) + "\n";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());

  FileChunkReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.file_size(), static_cast<int64_t>(payload.size()));
  std::string reassembled;
  std::string chunk;
  bool eof = false;
  while (!eof) {
    ASSERT_TRUE(reader.ReadNext(333, &chunk, &eof).ok());
    reassembled += chunk;
  }
  EXPECT_EQ(reassembled, payload);
  std::remove(path.c_str());
}

TEST(FileTest, ReadNextWithoutOpenFails) {
  FileChunkReader reader;
  std::string chunk;
  bool eof;
  EXPECT_FALSE(reader.ReadNext(16, &chunk, &eof).ok());
}

}  // namespace
}  // namespace parparaw
