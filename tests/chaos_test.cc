#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/parser.h"
#include "dialect/dialect.h"
#include "exec/executor.h"
#include "loader/bulk_loader.h"
#include "robust/failpoint.h"
#include "robust/reparse.h"
#include "serve/client.h"
#include "serve/server.h"
#include "stream/streaming_parser.h"

namespace parparaw {
namespace {

using robust::ErrorPolicy;
using robust::FailpointRegistry;
using robust::FailpointTrigger;

// The core robustness invariant (see robust/failpoint.h): under ANY
// schedule of injected faults, a pipeline entry point either returns a
// clean error Status or returns output bit-identical to the fault-free
// run. Never a crash, a leak (ASan/LSan in scripts/check.sh faults), a
// deadlock, or silently different data.
//
// Schedules are derived from a seeded PRNG so every run replays exactly.
// Override the sweep with:
//   PARPARAW_CHAOS_SCHEDULES  number of schedules (default 1200)
//   PARPARAW_CHAOS_SEED_BASE  first seed (default 20260806)

// xorshift64* — same generator the probability trigger uses, so schedules
// stay deterministic across platforms.
struct ChaosRng {
  uint64_t state;
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  int Uniform(int n) { return static_cast<int>(Next() % n); }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
};

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

// Faultable sites covering every layer the chaos sweep exercises,
// including every queue hand-off of the pipelined executor and every
// socket operation of the serving daemon (the serve.* sites fire on
// both sides of the loopback connection — the registry is
// process-wide).
const char* const kFailpoints[] = {
    "pool.task",       "alloc.context", "alloc.bitmap", "alloc.tag",
    "alloc.partition", "alloc.gather",  "alloc.convert", "stream.chunk",
    "loader.load",
    "io.open",         "io.read",       "io.tell",      "exec.ingest",
    "exec.read",
    "exec.queue.scan.push",    "exec.queue.scan.pop",
    "exec.queue.sort.push",    "exec.queue.sort.pop",
    "exec.queue.convert.push", "exec.queue.convert.pop",
    "dialect.compile", "dialect.minimise",
    "serve.accept",    "serve.read",    "serve.write",
    "serve.read.short", "serve.write.short",
    // Request-lifecycle sites: forced admission-deadline expiry, a
    // drain-style close after the response, a single bit flipped in a
    // checksummed frame (either direction — the registry is
    // process-wide), and a deadline firing at an executor hand-off.
    "serve.deadline",  "serve.drain",   "serve.corrupt",
    "exec.deadline",
    // Adaptive-planner sites: a failed head sample or a fault mid-decision
    // must degrade to the static plan (plan.fallback), never corrupt output.
    "plan.sample",     "plan.decide",
    // Scheduler schedule-perturbation sites: sched.submit diverts a task
    // to inline execution on the submitter, sched.steal makes a thief
    // skip one steal attempt. Neither is an error — arming them must
    // never change output, only the schedule (the sweep still asserts
    // clean-error-or-bit-identical, so any divergence is caught).
    "sched.submit",    "sched.steal",
};

// A small input with every interesting shape: quoted fields, quoted
// delimiters and newlines, empty fields, a malformed int, a short record.
// ~3 KB so a schedule sweep of >1000 runs stays fast.
std::string ChaosInput() {
  std::string csv;
  for (int i = 0; i < 120; ++i) {
    switch (i % 8) {
      case 3:
        csv += "\"q" + std::to_string(i) + ",x\"," + std::to_string(i) +
               ",\"line\nbreak\"\n";
        break;
      case 5:
        // Malformed int64 in column n: the error policies diverge here.
        csv += "row" + std::to_string(i) + ",notanint,plain\n";
        break;
      case 6:
        csv += std::to_string(i) + ",,\n";
        break;
      default:
        csv += "f" + std::to_string(i) + "," + std::to_string(i * 7) +
               ",tail" + std::to_string(i) + "\n";
        break;
    }
  }
  return csv;
}

Schema ChaosSchema() {
  Schema schema;
  schema.AddField(Field("s", DataType::String()));
  schema.AddField(Field("n", DataType::Int64()));
  schema.AddField(Field("t", DataType::String()));
  return schema;
}

enum class Entry { kParse, kStreaming, kLoader, kExec, kServe };

struct Config {
  Entry entry;
  bool scalar_kernel;
  ErrorPolicy policy;
  // Route the run through the dialect compiler: a runtime-compiled twin of
  // the default RFC 4180 format, so the parsed language is unchanged but
  // the compile → minimise → prove path (and its failpoints) is on the
  // schedule.
  bool use_dialect = false;

  bool operator<(const Config& other) const {
    return std::tie(entry, scalar_kernel, policy, use_dialect) <
           std::tie(other.entry, other.scalar_kernel, other.policy,
                    other.use_dialect);
  }
};

dialect::DialectSpec ChaosTwinSpec() {
  dialect::DialectSpec spec;  // defaults are exactly RFC 4180 CSV
  spec.name = "chaos-twin";
  return spec;
}

// Shared loopback daemon for the kServe schedules. Started lazily on the
// first serve schedule and reused for the rest of the sweep; the sweep
// stops it when done so every connection thread is joined (the Server
// object itself is intentionally leaked — joining matters for TSan's
// thread-leak check, the few bytes of Server state do not).
std::atomic<bool> g_chaos_server_started{false};

serve::Server& ChaosServer() {
  static serve::Server* server = new serve::Server(serve::ServeOptions{});
  return *server;
}

uint16_t ChaosServerPort() {
  static uint16_t port = [] {
    auto started = ChaosServer().Start();
    if (started.ok()) g_chaos_server_started.store(true);
    return started.ok() ? *started : uint16_t{0};
  }();
  return port;
}

void StopChaosServerIfStarted() {
  if (g_chaos_server_started.exchange(false)) ChaosServer().Stop();
}

ParseOptions BaseOptions(const Config& config) {
  ParseOptions options;
  options.schema = ChaosSchema();
  options.kernel =
      config.scalar_kernel ? simd::KernelKind::kScalar : simd::KernelKind::kAuto;
  options.error_policy = config.policy;
  if (config.use_dialect) options.dialect = ChaosTwinSpec();
  return options;
}

// One run of the configured entry point. Returns the resulting table (and
// rejected vector inside it) or the error.
Result<Table> RunEntry(const Config& config, const std::string& input) {
  switch (config.entry) {
    case Entry::kParse: {
      PARPARAW_ASSIGN_OR_RETURN(ParseOutput out,
                                Parser::Parse(input, BaseOptions(config)));
      return std::move(out.table);
    }
    case Entry::kStreaming: {
      StreamingOptions streaming;
      streaming.base = BaseOptions(config);
      streaming.partition_size = 700;  // several partitions per run
      PARPARAW_ASSIGN_OR_RETURN(StreamingResult out,
                                StreamingParser::Parse(input, streaming));
      return std::move(out.table);
    }
    case Entry::kLoader: {
      LoadOptions load;
      load.schema = ChaosSchema();
      load.header = 0;
      load.collect_statistics = false;
      load.error_policy = config.policy;
      if (config.use_dialect) load.dialect = ChaosTwinSpec();
      PARPARAW_ASSIGN_OR_RETURN(LoadResult out,
                                BulkLoader::LoadBuffer(input, load));
      return std::move(out.table);
    }
    case Entry::kExec: {
      exec::PipelineExecutor executor;
      exec::ExecOptions options;
      options.base = BaseOptions(config);
      options.partition_size = 700;  // several partitions in flight
      PARPARAW_ASSIGN_OR_RETURN(exec::IngestResult out,
                                executor.IngestBuffer(input, options));
      return std::move(out.table);
    }
    case Entry::kServe: {
      // Round-trip through a loopback parparawd: serialise, serve,
      // deserialise. Started lazily on the first (fault-free) serve
      // schedule and shared by the rest of the sweep — its acceptor must
      // survive every injected serve.* fault. The wire protocol has no
      // schema/dialect/kernel channel, so those knobs only vary the
      // reference key; the daemon resolves types by inference.
      const uint16_t port = ChaosServerPort();
      if (port == 0) return Status::Internal("chaos daemon failed to start");
      PARPARAW_ASSIGN_OR_RETURN(serve::Client client,
                                serve::Client::Connect(port));
      // v2 checksummed frames: serve.corrupt only bites checksummed
      // traffic, and every other serve.* fault must stay clean under
      // the CRC trailer too.
      client.set_checksums(true);
      serve::RequestOptions request;
      request.error_policy = static_cast<uint8_t>(config.policy);
      request.header = 0;
      PARPARAW_ASSIGN_OR_RETURN(serve::ParseReply reply,
                                client.Parse(input, request));
      if (reply.busy) return Status::ResourceExhausted("daemon busy");
      return std::move(reply.table);
    }
  }
  return Status::Internal("unreachable");
}

TEST(ChaosTest, EveryScheduleFailsCleanOrMatchesFaultFree) {
  const int schedules =
      static_cast<int>(EnvInt("PARPARAW_CHAOS_SCHEDULES", 1200));
  const uint64_t seed_base =
      static_cast<uint64_t>(EnvInt("PARPARAW_CHAOS_SEED_BASE", 20260806));
  const std::string input = ChaosInput();
  FailpointRegistry& registry = FailpointRegistry::Instance();

  // Fault-free references, one per configuration actually visited.
  std::map<Config, Table> references;
  const auto reference_for = [&](const Config& config) -> const Table& {
    auto it = references.find(config);
    if (it == references.end()) {
      auto table = RunEntry(config, input);
      EXPECT_TRUE(table.ok()) << table.status().ToString();
      it = references.emplace(config, std::move(table).ValueOrDie()).first;
    }
    return it->second;
  };

  int clean_errors = 0;
  int identical = 0;
  for (int s = 0; s < schedules; ++s) {
    ChaosRng rng{seed_base + static_cast<uint64_t>(s) * 0x9E3779B97F4A7C15ULL};
    rng.Next();

    Config config;
    config.entry = static_cast<Entry>(rng.Uniform(5));
    config.scalar_kernel = rng.Uniform(2) == 0;
    config.policy = std::array<ErrorPolicy, 3>{
        ErrorPolicy::kNull, ErrorPolicy::kSkip,
        ErrorPolicy::kQuarantine}[rng.Uniform(3)];
    config.use_dialect = rng.Uniform(3) == 0;
    const Table& reference = reference_for(config);

    // Arm 1-3 random failpoints with random triggers.
    const int armed = 1 + rng.Uniform(3);
    for (int a = 0; a < armed; ++a) {
      FailpointTrigger trigger;
      switch (rng.Uniform(3)) {
        case 0:
          trigger.kind = FailpointTrigger::Kind::kCount;
          trigger.n = 1 + rng.Uniform(3);
          break;
        case 1:
          trigger.kind = FailpointTrigger::Kind::kEveryNth;
          trigger.n = 2 + rng.Uniform(7);
          break;
        default:
          trigger.kind = FailpointTrigger::Kind::kProbability;
          trigger.probability = 0.05 + 0.45 * rng.Unit();
          trigger.seed = rng.Next();
          break;
      }
      switch (rng.Uniform(4)) {
        case 0:
          trigger.code = StatusCode::kIoError;
          break;
        case 1:
          trigger.code = StatusCode::kParseError;
          break;
        case 2:
          trigger.code = StatusCode::kResourceExhausted;
          break;
        default:
          trigger.code = StatusCode::kIoError;
          trigger.transient = true;  // exercised by the I/O retry loops
          break;
      }
      registry.Arm(
          kFailpoints[rng.Uniform(std::size(kFailpoints))], trigger);
    }

    const Result<Table> run = RunEntry(config, input);
    registry.DisarmAll();

    if (run.ok()) {
      // Faults either did not fire or were transparently retried; the
      // output must be bit-identical to the fault-free run.
      ASSERT_TRUE(run->Equals(reference)) << "schedule " << s;
      ASSERT_EQ(run->rejected, reference.rejected) << "schedule " << s;
      ++identical;
    } else {
      // Clean failure: a real code and a non-empty message.
      ASSERT_NE(run.status().code(), StatusCode::kOk) << "schedule " << s;
      ASSERT_FALSE(run.status().message().empty()) << "schedule " << s;
      ++clean_errors;
    }
  }

  // The sweep is only meaningful when both outcomes occur.
  EXPECT_GT(clean_errors, 0);
  EXPECT_GT(identical, 0);

  StopChaosServerIfStarted();
}

// Quarantine recovery must keep working when the file was parsed under a
// runtime-compiled dialect: a ','-delimited row slips into a ';' European
// CSV, is quarantined (one giant field fails int64 conversion), and
// ReparseQuarantined splices it back by sniffing the row's own dialect.
// The sniffed-format retry must disengage the custom dialect (format and
// dialect are mutually exclusive) or the retry itself would be rejected.
TEST(ChaosTest, QuarantineRecoveryUnderCustomDialect) {
  dialect::DialectSpec euro;
  euro.name = "euro-semicolon";
  euro.field_delimiter = ';';
  euro.escape_style = dialect::EscapeStyle::kBackslash;
  euro.strict_quotes = false;

  ParseOptions options;
  options.dialect = euro;
  options.schema.AddField(Field("a", DataType::Int64()));
  options.schema.AddField(Field("b", DataType::Int64()));
  options.schema.AddField(Field("s", DataType::String()));
  options.error_policy = ErrorPolicy::kQuarantine;

  const std::string input =
      "1;10;alpha\n"
      "7,70,delta\n"  // foreign ',' row: one field under ';', bad int64
      "3;30;gamma\n";
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 3);
  ASSERT_EQ(result->quarantine.size(), 1);
  EXPECT_EQ(result->table.rejected[1], 1);

  const auto recovered = robust::ReparseQuarantined(options, &*result);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 1);
  EXPECT_TRUE(result->quarantine.empty());
  EXPECT_EQ(result->table.NumRejected(), 0);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 7);
  EXPECT_EQ(result->table.columns[1].Value<int64_t>(1), 70);
  EXPECT_EQ(result->table.columns[2].StringValue(1), "delta");
  // Rows parsed under the custom dialect stay untouched.
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), 1);
  EXPECT_EQ(result->table.columns[2].StringValue(2), "gamma");
}

// A fault inside the dialect compiler itself must surface as a clean error
// from every entry point, and recompile cleanly once disarmed.
TEST(ChaosTest, DialectCompileFaultsFailCleanAcrossEntryPoints) {
  const std::string input = ChaosInput();
  for (const char* site : {"dialect.compile", "dialect.minimise"}) {
    for (int e = 0; e < 4; ++e) {
      Config config{static_cast<Entry>(e), true, ErrorPolicy::kNull, true};
      FailpointRegistry::Instance().Arm(site, robust::CountTrigger(1));
      const auto faulted = RunEntry(config, input);
      FailpointRegistry::Instance().DisarmAll();
      ASSERT_FALSE(faulted.ok()) << site << " entry " << e;
      EXPECT_FALSE(faulted.status().message().empty());
      const auto clean = RunEntry(config, input);
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      EXPECT_GT(clean->num_rows, 0);
    }
  }
}

// Faults must not linger: a process that saw injected errors parses
// normally once every failpoint is disarmed.
TEST(ChaosTest, DisarmRestoresNormalOperation) {
  const std::string input = ChaosInput();
  Config config{Entry::kParse, true, ErrorPolicy::kNull};
  FailpointRegistry::Instance().Arm("pool.task",
                                    robust::CountTrigger(1000000));
  const auto faulted = RunEntry(config, input);
  EXPECT_FALSE(faulted.ok());
  FailpointRegistry::Instance().DisarmAll();
  const auto clean = RunEntry(config, input);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->num_rows, 0);
}

}  // namespace
}  // namespace parparaw
