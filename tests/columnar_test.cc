#include <gtest/gtest.h>

#include "columnar/column.h"
#include "columnar/schema.h"
#include "columnar/table.h"
#include "columnar/types.h"

namespace parparaw {
namespace {

TEST(TypesTest, FixedWidths) {
  EXPECT_EQ(FixedWidth(TypeId::kBool), 1);
  EXPECT_EQ(FixedWidth(TypeId::kInt32), 4);
  EXPECT_EQ(FixedWidth(TypeId::kInt64), 8);
  EXPECT_EQ(FixedWidth(TypeId::kFloat64), 8);
  EXPECT_EQ(FixedWidth(TypeId::kDate32), 4);
  EXPECT_EQ(FixedWidth(TypeId::kTimestampMicros), 8);
  EXPECT_EQ(FixedWidth(TypeId::kString), 0);
  EXPECT_TRUE(IsFixedWidth(TypeId::kInt64));
  EXPECT_FALSE(IsFixedWidth(TypeId::kString));
}

TEST(TypesTest, ToStringAndEquality) {
  EXPECT_EQ(DataType::Int64().ToString(), "int64");
  EXPECT_EQ(DataType::Decimal64(2).ToString(), "decimal64(2)");
  EXPECT_TRUE(DataType::Decimal64(2) == DataType::Decimal64(2));
  EXPECT_FALSE(DataType::Decimal64(2) == DataType::Decimal64(3));
  EXPECT_FALSE(DataType::Int64() == DataType::Int32());
}

TEST(SchemaTest, FieldLookup) {
  Schema schema;
  schema.AddField(Field("id", DataType::Int64(), false));
  schema.AddField(Field("name", DataType::String()));
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.FieldIndex("name"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
  EXPECT_EQ(schema.ToString(), "schema{id: int64 NOT NULL, name: string}");
}

TEST(ColumnTest, AppendFixedWidth) {
  Column column(DataType::Int64());
  column.AppendValue<int64_t>(10);
  column.AppendNull();
  column.AppendValue<int64_t>(-5);
  EXPECT_EQ(column.length(), 3);
  EXPECT_EQ(column.Value<int64_t>(0), 10);
  EXPECT_TRUE(column.IsNull(1));
  EXPECT_EQ(column.Value<int64_t>(2), -5);
  EXPECT_EQ(column.ValueToString(0), "10");
  EXPECT_EQ(column.ValueToString(1), "NULL");
}

TEST(ColumnTest, AppendStrings) {
  Column column(DataType::String());
  column.AppendString("hello");
  column.AppendString("");
  column.AppendNull();
  column.AppendString("world");
  EXPECT_EQ(column.length(), 4);
  EXPECT_EQ(column.StringValue(0), "hello");
  EXPECT_EQ(column.StringValue(1), "");
  EXPECT_FALSE(column.IsNull(1));  // empty string is valid
  EXPECT_TRUE(column.IsNull(2));
  EXPECT_EQ(column.StringValue(3), "world");
}

TEST(ColumnTest, PositionalWrites) {
  Column column(DataType::Float64());
  column.Allocate(3);
  column.SetValue<double>(0, 1.5);
  column.SetNull(1);
  column.SetValue<double>(2, -2.25);
  EXPECT_EQ(column.Value<double>(0), 1.5);
  EXPECT_TRUE(column.IsNull(1));
  EXPECT_EQ(column.Value<double>(2), -2.25);
}

TEST(ColumnTest, EqualsComparesValuesAndValidity) {
  Column a(DataType::Int32());
  Column b(DataType::Int32());
  a.AppendValue<int32_t>(1);
  a.AppendNull();
  b.AppendValue<int32_t>(1);
  b.AppendNull();
  EXPECT_TRUE(a.Equals(b));
  b.AppendValue<int32_t>(2);
  EXPECT_FALSE(a.Equals(b));  // length differs
  Column c(DataType::Int32());
  c.AppendValue<int32_t>(1);
  c.AppendValue<int32_t>(0);  // valid zero vs null
  EXPECT_FALSE(a.Equals(c));
}

TEST(ColumnTest, DecimalToString) {
  Column column(DataType::Decimal64(2));
  column.AppendValue<int64_t>(1250);
  column.AppendValue<int64_t>(-305);
  EXPECT_EQ(column.ValueToString(0), "12.50");
  EXPECT_EQ(column.ValueToString(1), "-3.05");
}

TEST(ColumnTest, ConcatFixedWidth) {
  Column a(DataType::Int64());
  a.AppendValue<int64_t>(1);
  a.AppendNull();
  Column b(DataType::Int64());
  b.AppendValue<int64_t>(3);
  a.Concat(b);
  EXPECT_EQ(a.length(), 3);
  EXPECT_EQ(a.Value<int64_t>(0), 1);
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_EQ(a.Value<int64_t>(2), 3);
}

TEST(ColumnTest, ConcatStrings) {
  Column a(DataType::String());
  a.AppendString("x");
  a.AppendNull();
  Column b(DataType::String());
  b.AppendString("yz");
  b.AppendString("");
  a.Concat(b);
  EXPECT_EQ(a.length(), 4);
  EXPECT_EQ(a.StringValue(0), "x");
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_EQ(a.StringValue(2), "yz");
  EXPECT_EQ(a.StringValue(3), "");
}

TEST(TableTest, EqualsAndConcat) {
  auto make = [](int64_t first) {
    Table t;
    t.schema.AddField(Field("v", DataType::Int64()));
    Column c(DataType::Int64());
    c.AppendValue<int64_t>(first);
    c.AppendValue<int64_t>(first + 1);
    t.columns.push_back(std::move(c));
    t.num_rows = 2;
    t.rejected.assign(2, 0);
    return t;
  };
  Table a = make(0);
  Table b = make(0);
  EXPECT_TRUE(a.Equals(b));
  Table c = make(5);
  EXPECT_FALSE(a.Equals(c));

  Table merged = ConcatTables({a, c});
  EXPECT_EQ(merged.num_rows, 4);
  EXPECT_EQ(merged.columns[0].Value<int64_t>(3), 6);
  EXPECT_EQ(merged.rejected.size(), 4u);
}

TEST(TableTest, RowToStringAndBufferBytes) {
  Table t;
  t.schema.AddField(Field("id", DataType::Int64()));
  t.schema.AddField(Field("name", DataType::String()));
  Column id(DataType::Int64());
  id.AppendValue<int64_t>(7);
  Column name(DataType::String());
  name.AppendString("abc");
  t.columns.push_back(std::move(id));
  t.columns.push_back(std::move(name));
  t.num_rows = 1;
  EXPECT_EQ(t.RowToString(0), "7,abc");
  EXPECT_GT(t.TotalBufferBytes(), 0);
}

}  // namespace
}  // namespace parparaw
