#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "convert/numeric.h"
#include "convert/temporal.h"

namespace parparaw {
namespace {

TEST(ParseInt64Test, BasicValues) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("1941", &v));
  EXPECT_EQ(v, 1941);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt64("  42  ", &v));
  EXPECT_EQ(v, 42);
}

TEST(ParseInt64Test, Extremes) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));
}

TEST(ParseInt64Test, Malformed) {
  int64_t v;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("  ", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("0x10", &v));
}

TEST(ParseInt32Test, RangeChecked) {
  int32_t v;
  EXPECT_TRUE(ParseInt32("2147483647", &v));
  EXPECT_EQ(v, std::numeric_limits<int32_t>::max());
  EXPECT_TRUE(ParseInt32("-2147483648", &v));
  EXPECT_FALSE(ParseInt32("2147483648", &v));
  EXPECT_FALSE(ParseInt32("-2147483649", &v));
}

TEST(ParseFloat64Test, BasicValues) {
  double v;
  EXPECT_TRUE(ParseFloat64("199.99", &v));
  EXPECT_DOUBLE_EQ(v, 199.99);
  EXPECT_TRUE(ParseFloat64("-0.5", &v));
  EXPECT_DOUBLE_EQ(v, -0.5);
  EXPECT_TRUE(ParseFloat64("42", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_TRUE(ParseFloat64(".25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseFloat64("3.", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(ParseFloat64Test, Exponents) {
  double v;
  EXPECT_TRUE(ParseFloat64("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(ParseFloat64("2.5E-2", &v));
  EXPECT_DOUBLE_EQ(v, 0.025);
  EXPECT_TRUE(ParseFloat64("1e+10", &v));
  EXPECT_DOUBLE_EQ(v, 1e10);
  EXPECT_FALSE(ParseFloat64("1e", &v));
  EXPECT_FALSE(ParseFloat64("1e+", &v));
}

TEST(ParseFloat64Test, SlowPathPrecision) {
  double v;
  // 19+ significant digits exercise the strtod fallback.
  EXPECT_TRUE(ParseFloat64("1234567890.12345678901", &v));
  EXPECT_DOUBLE_EQ(v, 1234567890.12345678901);
  EXPECT_TRUE(ParseFloat64("0.000000000000000000001", &v));
  EXPECT_DOUBLE_EQ(v, 1e-21);
}

TEST(ParseFloat64Test, Malformed) {
  double v;
  EXPECT_FALSE(ParseFloat64("", &v));
  EXPECT_FALSE(ParseFloat64(".", &v));
  EXPECT_FALSE(ParseFloat64("-", &v));
  EXPECT_FALSE(ParseFloat64("1.2.3", &v));
  EXPECT_FALSE(ParseFloat64("abc", &v));
  EXPECT_FALSE(ParseFloat64("nan", &v));
  EXPECT_FALSE(ParseFloat64("inf", &v));
}

TEST(ParseDecimal64Test, ScalesCorrectly) {
  int64_t v;
  EXPECT_TRUE(ParseDecimal64("12.5", 2, &v));
  EXPECT_EQ(v, 1250);
  EXPECT_TRUE(ParseDecimal64("12.50", 2, &v));
  EXPECT_EQ(v, 1250);
  EXPECT_TRUE(ParseDecimal64("12", 2, &v));
  EXPECT_EQ(v, 1200);
  EXPECT_TRUE(ParseDecimal64("-0.05", 2, &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(ParseDecimal64("0.30", 2, &v));
  EXPECT_EQ(v, 30);
}

TEST(ParseDecimal64Test, RejectsExcessFractionAndGarbage) {
  int64_t v;
  EXPECT_FALSE(ParseDecimal64("12.505", 2, &v));
  EXPECT_FALSE(ParseDecimal64("1.2.3", 2, &v));
  EXPECT_FALSE(ParseDecimal64("", 2, &v));
  EXPECT_FALSE(ParseDecimal64(".", 2, &v));
  EXPECT_FALSE(ParseDecimal64("abc", 2, &v));
}

TEST(ParseBoolTest, Variants) {
  bool v;
  EXPECT_TRUE(ParseBool("true", &v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(ParseBool("FALSE", &v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(ParseBool("1", &v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(ParseBool("no", &v));
  EXPECT_FALSE(v);
  EXPECT_FALSE(ParseBool("maybe", &v));
  EXPECT_FALSE(ParseBool("", &v));
}

TEST(ParseDate32Test, EpochAndKnownDates) {
  int32_t v;
  EXPECT_TRUE(ParseDate32("1970-01-01", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseDate32("1970-01-02", &v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ParseDate32("2000-03-01", &v));
  EXPECT_EQ(v, 11017);
  EXPECT_TRUE(ParseDate32("1969-12-31", &v));
  EXPECT_EQ(v, -1);
  EXPECT_TRUE(ParseDate32("2018-06-15", &v));
  EXPECT_EQ(v, 17697);
}

TEST(ParseDate32Test, ValidationIncludingLeapYears) {
  int32_t v;
  EXPECT_TRUE(ParseDate32("2020-02-29", &v));   // leap year
  EXPECT_FALSE(ParseDate32("2019-02-29", &v));  // not a leap year
  EXPECT_FALSE(ParseDate32("1900-02-29", &v));  // century, not leap
  EXPECT_TRUE(ParseDate32("2000-02-29", &v));   // 400-year leap
  EXPECT_FALSE(ParseDate32("2020-13-01", &v));
  EXPECT_FALSE(ParseDate32("2020-00-10", &v));
  EXPECT_FALSE(ParseDate32("2020-04-31", &v));
  EXPECT_FALSE(ParseDate32("2020-4-01", &v));   // fixed-width digits
  EXPECT_FALSE(ParseDate32("2020-04-01x", &v));
}

TEST(ParseTimestampTest, DateAndTime) {
  int64_t v;
  EXPECT_TRUE(ParseTimestampMicros("1970-01-01 00:00:00", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseTimestampMicros("1970-01-01 00:00:01", &v));
  EXPECT_EQ(v, 1000000);
  EXPECT_TRUE(ParseTimestampMicros("1970-01-02T00:00:00", &v));
  EXPECT_EQ(v, int64_t{86400} * 1000000);
  EXPECT_TRUE(ParseTimestampMicros("1969-12-31 23:59:59", &v));
  EXPECT_EQ(v, -1000000);
}

TEST(ParseTimestampTest, FractionalSeconds) {
  int64_t v;
  EXPECT_TRUE(ParseTimestampMicros("1970-01-01 00:00:00.5", &v));
  EXPECT_EQ(v, 500000);
  EXPECT_TRUE(ParseTimestampMicros("1970-01-01 00:00:00.123456", &v));
  EXPECT_EQ(v, 123456);
  // Sub-microsecond digits are truncated.
  EXPECT_TRUE(ParseTimestampMicros("1970-01-01 00:00:00.1234567", &v));
  EXPECT_EQ(v, 123456);
  EXPECT_FALSE(ParseTimestampMicros("1970-01-01 00:00:00.", &v));
}

TEST(ParseTimestampTest, DateOnlyAndMalformed) {
  int64_t v;
  EXPECT_TRUE(ParseTimestampMicros("2018-01-01", &v));
  EXPECT_EQ(v, int64_t{17532} * 86400 * 1000000);
  EXPECT_FALSE(ParseTimestampMicros("2018-01-01 25:00:00", &v));
  EXPECT_FALSE(ParseTimestampMicros("2018-01-01 10:61:00", &v));
  EXPECT_FALSE(ParseTimestampMicros("2018-01-01x10:00:00", &v));
  EXPECT_FALSE(ParseTimestampMicros("", &v));
}

TEST(DaysFromCivilTest, MatchesKnownAnchors) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(2000, 1, 1), 10957);
  EXPECT_EQ(DaysFromCivil(1600, 1, 1), -135140);
}

TEST(IsLeapYearTest, Rules) {
  EXPECT_TRUE(IsLeapYear(2020));
  EXPECT_FALSE(IsLeapYear(2019));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_TRUE(IsLeapYear(2000));
}

}  // namespace
}  // namespace parparaw
