#include <gtest/gtest.h>

#include <string>

#include "parallel/thread_pool.h"
#include "text/unicode.h"

namespace parparaw {
namespace {

TEST(Utf8Test, ContinuationBytes) {
  EXPECT_TRUE(IsUtf8ContinuationByte(0x80));
  EXPECT_TRUE(IsUtf8ContinuationByte(0xBF));
  EXPECT_FALSE(IsUtf8ContinuationByte(0x7F));
  EXPECT_FALSE(IsUtf8ContinuationByte(0xC0));
}

TEST(Utf8Test, SequenceLengths) {
  EXPECT_EQ(Utf8SequenceLength('a'), 1);
  EXPECT_EQ(Utf8SequenceLength(0xC3), 2);
  EXPECT_EQ(Utf8SequenceLength(0xE2), 3);
  EXPECT_EQ(Utf8SequenceLength(0xF0), 4);
  EXPECT_EQ(Utf8SequenceLength(0x80), 0);  // continuation byte
}

TEST(Utf8Test, ChunkBeginAdjustment) {
  // "a € b": the euro sign is 3 bytes (E2 82 AC).
  const std::string s = "a\xE2\x82\xACZ";
  const auto* data = reinterpret_cast<const uint8_t*>(s.data());
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 0), 0u);
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 1), 1u);  // lead byte
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 2), 4u);  // inside -> next
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 3), 4u);
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 4), 4u);
  EXPECT_EQ(AdjustChunkBeginUtf8(data, s.size(), 5), 5u);  // clamp to size
}

TEST(Utf16Test, SurrogateDetection) {
  EXPECT_TRUE(IsUtf16HighSurrogate(0xD800));
  EXPECT_TRUE(IsUtf16HighSurrogate(0xDBFF));
  EXPECT_FALSE(IsUtf16HighSurrogate(0xDC00));
  EXPECT_TRUE(IsUtf16LowSurrogate(0xDC00));
  EXPECT_TRUE(IsUtf16LowSurrogate(0xDFFF));
  EXPECT_FALSE(IsUtf16LowSurrogate(0xD800));
  EXPECT_FALSE(IsUtf16LowSurrogate(0x0041));
}

TEST(Utf16Test, ChunkBeginSkipsLowSurrogate) {
  // U+1F600 (emoji) = D83D DE00 in UTF-16LE bytes: 3D D8 00 DE.
  const uint8_t bytes[] = {0x3D, 0xD8, 0x00, 0xDE, 'a', 0x00};
  EXPECT_EQ(AdjustChunkBeginUtf16Le(bytes, sizeof(bytes), 0), 0u);
  // Position 2 is the low surrogate: skip to 4.
  EXPECT_EQ(AdjustChunkBeginUtf16Le(bytes, sizeof(bytes), 2), 4u);
  EXPECT_EQ(AdjustChunkBeginUtf16Le(bytes, sizeof(bytes), 4), 4u);
  // Odd positions align up to the next unit first.
  EXPECT_EQ(AdjustChunkBeginUtf16Le(bytes, sizeof(bytes), 1), 4u);
}

TEST(EncodeUtf8Test, AllWidths) {
  uint8_t buf[4];
  EXPECT_EQ(EncodeUtf8('A', buf), 1);
  EXPECT_EQ(buf[0], 'A');
  EXPECT_EQ(EncodeUtf8(0xE9, buf), 2);  // é
  EXPECT_EQ(buf[0], 0xC3);
  EXPECT_EQ(buf[1], 0xA9);
  EXPECT_EQ(EncodeUtf8(0x20AC, buf), 3);  // €
  EXPECT_EQ(buf[0], 0xE2);
  EXPECT_EQ(EncodeUtf8(0x1F600, buf), 4);  // 😀
  EXPECT_EQ(buf[0], 0xF0);
  EXPECT_EQ(EncodeUtf8(0xD800, buf), 0);    // surrogate: invalid
  EXPECT_EQ(EncodeUtf8(0x110000, buf), 0);  // out of range
}

std::string Utf16Le(std::initializer_list<uint16_t> units) {
  std::string out;
  for (uint16_t u : units) {
    out.push_back(static_cast<char>(u & 0xFF));
    out.push_back(static_cast<char>(u >> 8));
  }
  return out;
}

TEST(TranscodeTest, AsciiRoundTrip) {
  ThreadPool pool(4);
  auto result =
      TranscodeUtf16LeToUtf8(&pool, Utf16Le({'h', 'i', ',', '1', '\n'}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, "hi,1\n");
}

TEST(TranscodeTest, BmpAndSupplementary) {
  ThreadPool pool(2);
  // "€" U+20AC and "😀" U+1F600 (D83D DE00).
  auto result =
      TranscodeUtf16LeToUtf8(&pool, Utf16Le({0x20AC, 0xD83D, 0xDE00}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(TranscodeTest, ChunkBoundaryInsideSurrogatePair) {
  ThreadPool pool(4);
  // Force tiny chunks so pairs straddle boundaries.
  std::string input;
  for (int i = 0; i < 100; ++i) {
    input += Utf16Le({'a', 0xD83D, 0xDE00, 'b'});
  }
  auto small = TranscodeUtf16LeToUtf8(&pool, input, /*chunk_size=*/6);
  auto big = TranscodeUtf16LeToUtf8(&pool, input, /*chunk_size=*/1 << 20);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*small, *big);
}

TEST(TranscodeTest, Errors) {
  ThreadPool pool(2);
  // Odd byte length.
  EXPECT_FALSE(TranscodeUtf16LeToUtf8(&pool, "a").ok());
  // Unpaired high surrogate at end.
  EXPECT_FALSE(TranscodeUtf16LeToUtf8(&pool, Utf16Le({0xD83D})).ok());
  // Unpaired low surrogate.
  EXPECT_FALSE(TranscodeUtf16LeToUtf8(&pool, Utf16Le({'a', 0xDE00})).ok());
  // High surrogate followed by non-surrogate.
  EXPECT_FALSE(TranscodeUtf16LeToUtf8(&pool, Utf16Le({0xD83D, 'x'})).ok());
}

TEST(TranscodeTest, EmptyInput) {
  ThreadPool pool(2);
  auto result = TranscodeUtf16LeToUtf8(&pool, "");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace parparaw
