#include <gtest/gtest.h>

#include "sim/timeline.h"

namespace parparaw {
namespace {

TEST(TimelineTest, SinglePartitionIsSerial) {
  PartitionStages s;
  s.h2d_seconds = 1.0;
  s.parse_seconds = 2.0;
  s.d2h_seconds = 0.5;
  const StreamingTimeline t = StreamingTimeline::Schedule({s});
  EXPECT_DOUBLE_EQ(t.makespan, 3.5);
  EXPECT_DOUBLE_EQ(t.parses[0].start, 1.0);
  EXPECT_DOUBLE_EQ(t.returns[0].start, 3.0);
}

TEST(TimelineTest, StagesOverlapAcrossPartitions) {
  // Four equal partitions: transfer(p+1) overlaps parse(p), return(p)
  // overlaps parse(p+1) — the Fig. 7 pipeline.
  std::vector<PartitionStages> stages(4);
  for (auto& s : stages) {
    s.h2d_seconds = 1.0;
    s.parse_seconds = 1.0;
    s.d2h_seconds = 1.0;
  }
  const StreamingTimeline t = StreamingTimeline::Schedule(stages);
  // Serial would be 12; the pipeline needs first-transfer + 4 parses +
  // last-return = 1 + 4 + 1 = 6.
  EXPECT_DOUBLE_EQ(t.makespan, 6.0);
  // transfer(1) runs while parse(0) runs.
  EXPECT_LT(t.transfers[1].start, t.parses[0].end);
  // return(0) runs while parse(1) runs.
  EXPECT_LT(t.returns[0].start, t.parses[1].end);
}

TEST(TimelineTest, BottleneckStageDominates) {
  // When parsing is much slower than transfers, makespan approaches
  // sum(parse) + first transfer + last return.
  std::vector<PartitionStages> stages(8);
  for (auto& s : stages) {
    s.h2d_seconds = 0.1;
    s.parse_seconds = 2.0;
    s.d2h_seconds = 0.1;
  }
  const StreamingTimeline t = StreamingTimeline::Schedule(stages);
  EXPECT_NEAR(t.makespan, 0.1 + 8 * 2.0 + 0.1, 1e-9);
}

TEST(TimelineTest, TransferBoundMatchesChannelOccupancy) {
  // When H2D is the bottleneck, the channel never idles after warmup.
  std::vector<PartitionStages> stages(8);
  for (auto& s : stages) {
    s.h2d_seconds = 2.0;
    s.parse_seconds = 0.2;
    s.d2h_seconds = 0.2;
  }
  const StreamingTimeline t = StreamingTimeline::Schedule(stages);
  EXPECT_NEAR(t.makespan, 8 * 2.0 + 0.2 + 0.2, 1e-9);
}

TEST(TimelineTest, CarryOverCopyDelaysBufferReuse) {
  // The carry-over copy reads the input buffer, so transfer(p+2) may not
  // start before it finishes (the Fig. 7 corruption hazard).
  std::vector<PartitionStages> stages(3);
  for (auto& s : stages) {
    s.h2d_seconds = 1.0;
    s.parse_seconds = 1.0;
    s.d2h_seconds = 0.1;
    s.carry_copy_seconds = 5.0;  // exaggerated
  }
  const StreamingTimeline t = StreamingTimeline::Schedule(stages);
  // transfer(2) reuses buffer A, whose carry-over copy ends at
  // parse(0).end + 5.
  EXPECT_GE(t.transfers[2].start, t.parses[0].end + 5.0);
}

TEST(TimelineTest, ToStringListsAllStages) {
  std::vector<PartitionStages> stages(2);
  for (auto& s : stages) {
    s.h2d_seconds = 0.1;
    s.parse_seconds = 0.1;
    s.d2h_seconds = 0.1;
  }
  const StreamingTimeline t = StreamingTimeline::Schedule(stages);
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("transfer"), std::string::npos);
  EXPECT_NE(rendered.find("parse"), std::string::npos);
  EXPECT_NE(rendered.find("return"), std::string::npos);
  EXPECT_NE(rendered.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace parparaw
