#include <gtest/gtest.h>

#include "mfira/swar.h"

namespace parparaw {
namespace {

TEST(SwarTest, MycroftHasZeroByte) {
  EXPECT_NE(SwarHasZeroByte(0x11220033u), 0u);
  EXPECT_EQ(SwarHasZeroByte(0x11223344u), 0u);
  EXPECT_NE(SwarHasZeroByte(0x00000000u), 0u);
  // The detected byte sets its most-significant bit (Table 2: H(x)).
  EXPECT_EQ(SwarHasZeroByte(0x11003344u), 0x00800000u);
}

TEST(SwarTest, Table2Example) {
  // Table 2's exact lookup: \t | , " \n (five symbols, two LU-registers).
  SwarMatcher matcher({'\n', '"', ',', '|', '\t'});
  // Reading ',' must match index 2 (byte 2 of register 0).
  EXPECT_EQ(matcher.Match(','), 2);
  EXPECT_EQ(matcher.Match('\n'), 0);
  EXPECT_EQ(matcher.Match('"'), 1);
  EXPECT_EQ(matcher.Match('|'), 3);
  EXPECT_EQ(matcher.Match('\t'), 4);  // second register
}

TEST(SwarTest, NoMatchMapsToCatchAll) {
  SwarMatcher matcher({'\n', '"', ','});
  EXPECT_EQ(matcher.catch_all_index(), 3);
  EXPECT_EQ(matcher.Match('x'), 3);
  EXPECT_EQ(matcher.Match(0xFF), 3);
  EXPECT_EQ(matcher.Match(0x00), 3);
}

TEST(SwarTest, EmptyMatcherAlwaysCatchAll) {
  SwarMatcher matcher((std::vector<uint8_t>()));
  EXPECT_EQ(matcher.catch_all_index(), 0);
  for (int s = 0; s < 256; ++s) {
    EXPECT_EQ(matcher.Match(static_cast<uint8_t>(s)), 0);
  }
}

TEST(SwarTest, NulByteAsRegisteredSymbol) {
  // 0x00 is a legitimate symbol (e.g. for binary-ish formats); padding
  // bytes must not shadow or fake a match.
  SwarMatcher matcher({'\n', 0x00});
  EXPECT_EQ(matcher.Match(0x00), 1);
  EXPECT_EQ(matcher.Match('\n'), 0);
  EXPECT_EQ(matcher.Match('a'), 2);
}

TEST(SwarTest, ExhaustiveAgainstLinearSearch) {
  const std::vector<uint8_t> symbols = {0x00, 0x0A, 0x22, 0x2C,
                                        0x7C, 0x09, 0xFF, 0x80};
  SwarMatcher matcher(symbols);
  for (int s = 0; s < 256; ++s) {
    int expected = static_cast<int>(symbols.size());
    for (size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i] == s) {
        expected = static_cast<int>(i);
        break;
      }
    }
    EXPECT_EQ(matcher.Match(static_cast<uint8_t>(s)), expected) << "s=" << s;
  }
}

TEST(SwarTest, SixteenSymbols) {
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 16; ++i) symbols.push_back(static_cast<uint8_t>(i * 7 + 1));
  SwarMatcher matcher(symbols);
  EXPECT_EQ(matcher.lookup_registers().size(), 4u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(matcher.Match(symbols[i]), i);
  }
  EXPECT_EQ(matcher.Match(0), 16);
}

TEST(SwarTest, LookupRegisterLayoutMatchesTable2) {
  // Byte j of register r holds symbols[4r + j] (the "lookup" row).
  SwarMatcher matcher({'\n', '"', ',', '|', '\t'});
  ASSERT_EQ(matcher.lookup_registers().size(), 2u);
  const uint32_t reg0 = matcher.lookup_registers()[0];
  EXPECT_EQ(reg0 & 0xFF, static_cast<uint32_t>('\n'));
  EXPECT_EQ((reg0 >> 8) & 0xFF, static_cast<uint32_t>('"'));
  EXPECT_EQ((reg0 >> 16) & 0xFF, static_cast<uint32_t>(','));
  EXPECT_EQ((reg0 >> 24) & 0xFF, static_cast<uint32_t>('|'));
  EXPECT_EQ(matcher.lookup_registers()[1] & 0xFF,
            static_cast<uint32_t>('\t'));
}

}  // namespace
}  // namespace parparaw
