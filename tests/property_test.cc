#include <gtest/gtest.h>

#include <random>
#include <string>

#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

// The central correctness property: for ANY input, ParPaRaw's massively
// parallel pipeline must produce exactly the table the sequential
// reference parser produces — regardless of chunk size, tagging mode, or
// drop policy.

struct PropertyCase {
  uint64_t seed;
  size_t chunk_size;
  TaggingMode mode;
  ColumnCountPolicy policy;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const char* mode = info.param.mode == TaggingMode::kRecordTags
                         ? "tagged"
                         : (info.param.mode == TaggingMode::kInlineTerminated
                                ? "inline"
                                : "delimited");
  const char* policy =
      info.param.policy == ColumnCountPolicy::kRobust ? "robust" : "reject";
  return "seed" + std::to_string(info.param.seed) + "_chunk" +
         std::to_string(info.param.chunk_size) + "_" + mode + "_" + policy;
}

class ParityTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ParityTest, MatchesSequentialReference) {
  const PropertyCase& param = GetParam();
  RandomCsvOptions gen;
  gen.num_records = 120;
  gen.num_columns = 4;
  gen.ragged_probability =
      param.policy == ColumnCountPolicy::kRobust ? 0.15 : 0.15;
  gen.trailing_newline = (param.seed % 2) == 0;
  const std::string input = GenerateRandomCsv(param.seed, gen);

  ParseOptions options;
  options.chunk_size = param.chunk_size;
  options.tagging_mode = param.mode;
  options.column_count_policy = param.policy;
  // Inline/vector modes require consistent columns; with ragged input we
  // use the reject policy for them (the documented contract).
  if (param.mode != TaggingMode::kRecordTags) {
    options.column_count_policy = ColumnCountPolicy::kReject;
  }

  auto expected = SequentialParser::Parse(input, options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto got = Parser::Parse(input, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ASSERT_EQ(got->table.num_rows, expected->table.num_rows);
  EXPECT_TRUE(got->table.Equals(expected->table)) << "input:\n" << input;
  EXPECT_EQ(got->records_dropped, expected->records_dropped);
  EXPECT_EQ(got->min_columns, expected->min_columns);
  EXPECT_EQ(got->max_columns, expected->max_columns);
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    for (size_t chunk : {1u, 3u, 7u, 31u, 256u}) {
      cases.push_back({seed, chunk, TaggingMode::kRecordTags,
                       ColumnCountPolicy::kRobust});
    }
    cases.push_back({seed, 31, TaggingMode::kInlineTerminated,
                     ColumnCountPolicy::kReject});
    cases.push_back({seed, 5, TaggingMode::kVectorDelimited,
                     ColumnCountPolicy::kReject});
    cases.push_back(
        {seed, 13, TaggingMode::kRecordTags, ColumnCountPolicy::kReject});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomisedInputs, ParityTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

TEST(ParityTest, TypedSchemaRandomised) {
  // Numeric/temporal conversion parity on schema-typed random data.
  for (uint64_t seed = 100; seed < 108; ++seed) {
    const std::string input = GenerateTaxiLike(seed, 16 * 1024);
    ParseOptions options;
    options.schema = TaxiSchema();
    options.chunk_size = 17;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "seed " << seed;
    EXPECT_EQ(got->table.NumRejected(), 0) << "seed " << seed;
  }
}

TEST(ParityTest, YelpLikeQuotedData) {
  for (uint64_t seed = 200; seed < 204; ++seed) {
    const std::string input = GenerateYelpLike(seed, 32 * 1024);
    ParseOptions options;
    options.schema = YelpSchema();
    options.chunk_size = 31;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "seed " << seed;
  }
}

TEST(ParityTest, SkipSetsAndDefaults) {
  RandomCsvOptions gen;
  gen.num_records = 80;
  gen.num_columns = 5;
  const std::string input = GenerateRandomCsv(42, gen);
  ParseOptions options;
  for (int j = 0; j < 5; ++j) {
    Field f("c" + std::to_string(j), DataType::String());
    if (j == 2) f.default_value = "dflt";
    options.schema.AddField(f);
  }
  options.skip_records = {0, 5, 9, 70};
  options.skip_columns = {1, 4};
  options.chunk_size = 9;
  auto expected = SequentialParser::Parse(input, options);
  ASSERT_TRUE(expected.ok());
  auto got = Parser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST(ParityTest, InferenceParity) {
  for (uint64_t seed = 300; seed < 304; ++seed) {
    RandomCsvOptions gen;
    gen.num_records = 60;
    gen.num_columns = 3;
    gen.quote_probability = 0.0;
    gen.empty_probability = 0.2;
    const std::string input = GenerateRandomCsv(seed, gen);
    ParseOptions options;
    options.infer_types = true;
    options.chunk_size = 11;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "seed " << seed;
  }
}

TEST(ParityTest, RandomBytesFuzzParity) {
  // Even structurally invalid inputs must parse identically (both sides
  // interpret symbols through the same DFA; only the parallelisation
  // differs). Robust record-tag mode, no validation.
  std::mt19937_64 rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    std::string input;
    const int len = 1 + static_cast<int>(rng() % 400);
    // Bias toward structural characters to hit interesting transitions.
    const char alphabet[] = {',', '"', '\n', 'a', 'b', '0', ' ', '\r'};
    for (int i = 0; i < len; ++i) {
      input.push_back(alphabet[rng() % sizeof(alphabet)]);
    }
    ParseOptions options;
    options.chunk_size = 1 + rng() % 40;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table))
        << "trial " << trial << " chunk " << options.chunk_size;
  }
}

TEST(ParityTest, ExtendedLogFormatParity) {
  auto format = ExtendedLogFormat();
  ASSERT_TRUE(format.ok());
  for (uint64_t seed = 400; seed < 403; ++seed) {
    const std::string input = GenerateLogLike(seed, 8 * 1024);
    ParseOptions options;
    options.format = *format;
    options.chunk_size = 23;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace parparaw
