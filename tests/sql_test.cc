#include <gtest/gtest.h>

#include "core/parser.h"
#include "query/sql.h"

namespace parparaw {
namespace {

Table Orders() {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("customer", DataType::String()));
  options.schema.AddField(Field("amount", DataType::Float64()));
  options.schema.AddField(Field("day", DataType::Date32()));
  auto result = Parser::Parse(
      "1,alice,10.5,2023-01-01\n"
      "2,bob,3.25,2023-01-02\n"
      "3,alice,7.0,2023-01-02\n"
      "4,carol,,2023-01-03\n"
      "5,bob,12.0,2023-01-03\n",
      options);
  EXPECT_TRUE(result.ok());
  return result->table;
}

TEST(SqlTest, SelectStar) {
  const Table table = Orders();
  auto result = ExecuteSql("SELECT * FROM orders", table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows, 5);
  EXPECT_EQ(result->num_columns(), 4);
}

TEST(SqlTest, ProjectionAndWhere) {
  const Table table = Orders();
  auto result = ExecuteSql(
      "SELECT customer, amount FROM orders WHERE amount >= 7 AND id != 3",
      table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows, 2);
  EXPECT_EQ(result->num_columns(), 2);
  EXPECT_EQ(result->columns[0].StringValue(0), "alice");
  EXPECT_EQ(result->columns[0].StringValue(1), "bob");
}

TEST(SqlTest, StringLiteralsAndOperators) {
  const Table table = Orders();
  auto eq = ExecuteSql("SELECT id FROM t WHERE customer = 'alice'", Orders());
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->num_rows, 2);
  auto contains =
      ExecuteSql("SELECT id FROM t WHERE customer CONTAINS 'aro'", table);
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(contains->num_rows, 1);
  auto prefix =
      ExecuteSql("SELECT id FROM t WHERE customer STARTSWITH 'b'", table);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->num_rows, 2);
}

TEST(SqlTest, DateLiteralAndNullChecks) {
  const Table table = Orders();
  auto day = ExecuteSql("SELECT id FROM t WHERE day = 2023-01-02", table);
  ASSERT_TRUE(day.ok()) << day.status().ToString();
  EXPECT_EQ(day->num_rows, 2);
  auto nulls = ExecuteSql("SELECT id FROM t WHERE amount IS NULL", table);
  ASSERT_TRUE(nulls.ok());
  ASSERT_EQ(nulls->num_rows, 1);
  EXPECT_EQ(nulls->columns[0].Value<int64_t>(0), 4);
  auto not_nulls =
      ExecuteSql("SELECT id FROM t WHERE amount IS NOT NULL", table);
  ASSERT_TRUE(not_nulls.ok());
  EXPECT_EQ(not_nulls->num_rows, 4);
}

TEST(SqlTest, GlobalAggregates) {
  const Table table = Orders();
  auto result = ExecuteSql(
      "SELECT count(*), count(amount), sum(amount), avg(amount) FROM t",
      table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows, 1);
  EXPECT_EQ(result->columns[0].Value<int64_t>(0), 5);
  EXPECT_EQ(result->columns[1].Value<int64_t>(0), 4);
  EXPECT_DOUBLE_EQ(result->columns[2].Value<double>(0), 32.75);
  EXPECT_DOUBLE_EQ(result->columns[3].Value<double>(0), 32.75 / 4);
}

TEST(SqlTest, GroupBy) {
  const Table table = Orders();
  auto result = ExecuteSql(
      "SELECT count(*), max(amount) FROM t WHERE amount IS NOT NULL "
      "GROUP BY customer",
      table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows, 2);
  EXPECT_EQ(result->columns[0].StringValue(0), "alice");
  EXPECT_EQ(result->columns[1].Value<int64_t>(0), 2);
  EXPECT_DOUBLE_EQ(result->columns[2].Value<double>(1), 12.0);
}

TEST(SqlTest, CaseInsensitiveKeywords) {
  const Table table = Orders();
  auto result = ExecuteSql(
      "select Sum(amount) from t where customer = 'bob' group by customer",
      table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows, 1);
  EXPECT_DOUBLE_EQ(result->columns[1].Value<double>(0), 15.25);
}

TEST(SqlTest, Errors) {
  const Table table = Orders();
  EXPECT_FALSE(ExecuteSql("FROB x", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT nope FROM t", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id FROM t WHERE", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id FROM t WHERE id @@ 1", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id FROM", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id, sum(amount) FROM t", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id FROM t GROUP BY customer", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT id FROM t EXTRA", table).ok());
  EXPECT_FALSE(ExecuteSql("SELECT frobnicate(id) FROM t", table).ok());
}

}  // namespace
}  // namespace parparaw
