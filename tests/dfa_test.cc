#include <gtest/gtest.h>

#include <random>

#include "dfa/dfa.h"
#include "dfa/formats.h"
#include "dfa/state_vector.h"

namespace parparaw {
namespace {

TEST(StateVectorTest, IdentityMapsEachStateToItself) {
  StateVector v = StateVector::Identity(6);
  EXPECT_EQ(v.size(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(v.Get(i), i);
}

TEST(StateVectorTest, ComposeAppliesLeftThenRight) {
  // a maps i -> (i+1) mod 4; b maps i -> 2i mod 4.
  StateVector a = StateVector::Identity(4);
  StateVector b = StateVector::Identity(4);
  for (int i = 0; i < 4; ++i) {
    a.Set(i, static_cast<uint8_t>((i + 1) % 4));
    b.Set(i, static_cast<uint8_t>((2 * i) % 4));
  }
  const StateVector ab = Compose(a, b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ab.Get(i), (2 * ((i + 1) % 4)) % 4);
  }
}

TEST(StateVectorTest, ComposeIsAssociative) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    StateVector a = StateVector::Identity(6);
    StateVector b = StateVector::Identity(6);
    StateVector c = StateVector::Identity(6);
    for (int i = 0; i < 6; ++i) {
      a.Set(i, static_cast<uint8_t>(rng() % 6));
      b.Set(i, static_cast<uint8_t>(rng() % 6));
      c.Set(i, static_cast<uint8_t>(rng() % 6));
    }
    EXPECT_TRUE(Compose(Compose(a, b), c) == Compose(a, Compose(b, c)));
  }
}

TEST(StateVectorTest, IdentityIsNeutral) {
  StateVector id = StateVector::Identity(5);
  StateVector a = StateVector::Identity(5);
  for (int i = 0; i < 5; ++i) a.Set(i, static_cast<uint8_t>((i * 2 + 1) % 5));
  EXPECT_TRUE(Compose(id, a) == a);
  EXPECT_TRUE(Compose(a, id) == a);
}

TEST(DfaBuilderTest, RejectsEmptyAndOversized) {
  DfaBuilder empty;
  EXPECT_FALSE(empty.Build().ok());

  DfaBuilder too_many;
  for (int i = 0; i < 17; ++i) {
    too_many.AddState("s" + std::to_string(i), true);
  }
  for (int i = 0; i < 17; ++i) too_many.SetDefaultTransition(i, 0, 0);
  EXPECT_FALSE(too_many.Build().ok());
}

TEST(DfaBuilderTest, RejectsMissingTransition) {
  DfaBuilder b;
  const int s0 = b.AddState("s0", true);
  b.AddSymbol('x');
  b.SetDefaultTransition(s0, s0, 0);
  // Transition for ('x', s0) never set.
  EXPECT_FALSE(b.Build().ok());
}

TEST(DfaBuilderTest, RejectsDuplicateSymbols) {
  DfaBuilder b;
  const int s0 = b.AddState("s0", true);
  const int g1 = b.AddSymbol('x');
  const int g2 = b.AddSymbol('x');
  b.SetTransition(s0, g1, s0, 0);
  b.SetTransition(s0, g2, s0, 0);
  b.SetDefaultTransition(s0, s0, 0);
  EXPECT_FALSE(b.Build().ok());
}

Dfa MakeToggleDfa() {
  // Two states toggled by 'x'; everything else self-loops.
  DfaBuilder b;
  const int s0 = b.AddState("even", true);
  const int s1 = b.AddState("odd", false);
  const int gx = b.AddSymbol('x');
  b.SetTransition(s0, gx, s1, kSymbolControl);
  b.SetTransition(s1, gx, s0, kSymbolControl);
  b.SetDefaultTransition(s0, s0, kSymbolData);
  b.SetDefaultTransition(s1, s1, kSymbolData);
  return *b.Build();
}

TEST(DfaTest, RunFollowsTransitions) {
  const Dfa dfa = MakeToggleDfa();
  const std::string input = "axbxcx";
  EXPECT_EQ(dfa.Run(0, reinterpret_cast<const uint8_t*>(input.data()), 6), 1);
  EXPECT_EQ(dfa.Run(0, reinterpret_cast<const uint8_t*>(input.data()), 4), 0);
}

TEST(DfaTest, TransitionVectorTracksAllStartStates) {
  const Dfa dfa = MakeToggleDfa();
  const std::string chunk = "x";
  const StateVector v = dfa.TransitionVector(
      reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size());
  EXPECT_EQ(v.Get(0), 1);
  EXPECT_EQ(v.Get(1), 0);
}

TEST(DfaTest, TransitionVectorComposesLikeFullRun) {
  // Splitting an input anywhere and composing the two chunks' vectors must
  // equal the whole input's vector — the core §3.1 property.
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  const std::string input = "a,\"b\"\"x,\n\",c\n\"open";
  const auto* data = reinterpret_cast<const uint8_t*>(input.data());
  const StateVector whole = dfa.TransitionVector(data, input.size());
  for (size_t split = 0; split <= input.size(); ++split) {
    const StateVector left = dfa.TransitionVector(data, split);
    const StateVector right =
        dfa.TransitionVector(data + split, input.size() - split);
    EXPECT_TRUE(Compose(left, right) == whole) << "split=" << split;
  }
}

TEST(DfaTest, StepMatchesNextStateForSymbol) {
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  std::mt19937 rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const uint8_t symbol = static_cast<uint8_t>(rng() % 256);
    StateVector v = StateVector::Identity(dfa.num_states());
    dfa.Step(&v, symbol);
    for (int s = 0; s < dfa.num_states(); ++s) {
      EXPECT_EQ(v.Get(s), dfa.NextStateForSymbol(s, symbol));
    }
  }
}

}  // namespace
}  // namespace parparaw
