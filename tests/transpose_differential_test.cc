#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/parser.h"
#include "dfa/formats.h"
#include "dialect/dialect.h"
#include "robust/failpoint.h"
#include "stream/streaming_parser.h"
#include "test_util.h"
#include "workload/generators.h"

// Differential harness for the transposition modes: the field-gather path
// (TransposeMode::kFieldGather, the default) must produce bit-identical
// output to the paper's symbol-sort path (kSymbolSort) on arbitrary
// inputs. The symbol sort is the ground truth — it predates the gather
// subsystem and mirrors the paper's §3.3 construction directly — and the
// two are compared end to end across formats, tagging modes, error
// policies, partition sizes, and injected gather-allocation faults.

namespace parparaw {
namespace {

using robust::ErrorPolicy;
using robust::FailpointRegistry;

struct NamedFormat {
  std::string name;
  Format format;
};

/// Every registered format family: the paper's RFC 4180 DFA, DSV variants
/// covering pipes/TSV/comments/CR/escapes, and the Extended Log Format.
std::vector<NamedFormat> RegisteredFormats() {
  std::vector<NamedFormat> formats;
  auto add = [&formats](const std::string& name, Result<Format> format) {
    ASSERT_TRUE(format.ok()) << name << ": " << format.status().ToString();
    formats.push_back({name, *std::move(format)});
  };
  add("rfc4180", Rfc4180Format());
  {
    DsvOptions pipe;
    pipe.field_delimiter = '|';
    add("pipe", DsvFormat(pipe));
  }
  {
    DsvOptions tsv;
    tsv.field_delimiter = '\t';
    tsv.escape = '\\';
    tsv.strict_quotes = false;
    add("tsv_escape", DsvFormat(tsv));
  }
  {
    DsvOptions commented;
    commented.comment = '#';
    commented.skip_empty_lines = true;
    commented.ignore_carriage_return = true;
    add("comment_cr", DsvFormat(commented));
  }
  add("extended_log", ExtendedLogFormat());
  return formats;
}

/// Deterministic xorshift for input mutation (seeded, reproducible).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

/// Purely random bytes: exercises dropped records, zero-length fields and
/// symbols outside every symbol group. Both modes see the same bytes.
std::string RandomBytes(uint64_t seed, size_t size) {
  Rng rng(seed);
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>(rng.Next() & 0xFF);
  }
  return out;
}

std::string InputForSeed(const NamedFormat& format, uint64_t seed) {
  const uint64_t category = seed % 8;
  if (category == 6) return RandomBytes(seed, 64 + seed % 512);
  if (format.name == "extended_log") {
    return GenerateLogLike(seed, 256 + seed % 512);
  }
  RandomCsvOptions options;
  options.num_records = 3 + static_cast<int>(seed % 20);
  options.num_columns = 1 + static_cast<int>(seed % 7);
  options.quote_probability = (seed % 5) * 0.2;
  options.embedded_delimiter_probability = (seed % 3) * 0.3;
  options.escaped_quote_probability = (seed % 4) * 0.25;
  options.ragged_probability = (seed % 2) * 0.3;
  options.trailing_newline = (seed % 3) != 0;
  std::string input = GenerateRandomCsv(seed, options);
  if (format.format.field_delimiter != ',') {
    for (char& ch : input) {
      if (ch == ',') ch = static_cast<char>(format.format.field_delimiter);
    }
  }
  return input;
}

size_t ChunkSizeForSeed(uint64_t seed) {
  static const size_t kChunkSizes[] = {1, 2, 3, 5, 7, 16, 31, 64};
  return kChunkSizes[seed % 8];
}

/// The per-seed option axes: tagging mode and error policy rotate with the
/// seed so the sweep covers the full cross product over a few thousand
/// inputs. Non-record-tag modes require consistent column counts, so they
/// ride with the reject policy (same convention as the SIMD harness).
ParseOptions OptionsForSeed(const NamedFormat& format, uint64_t seed) {
  ParseOptions options;
  options.format = format.format;
  options.chunk_size = ChunkSizeForSeed(seed);
  options.tagging_mode = static_cast<TaggingMode>(seed % 3);
  if (options.tagging_mode != TaggingMode::kRecordTags) {
    options.column_count_policy = ColumnCountPolicy::kReject;
  }
  options.error_policy = static_cast<ErrorPolicy>(seed % 4);
  return options;
}

void ExpectOutputsEqual(const Result<ParseOutput>& want,
                        const Result<ParseOutput>& got,
                        const std::string& context) {
  ASSERT_EQ(want.ok(), got.ok())
      << context << ": "
      << (want.ok() ? got.status().ToString() : want.status().ToString());
  if (!want.ok()) {
    // Same failure, byte-identical message and offsets.
    ASSERT_EQ(want.status().ToString(), got.status().ToString()) << context;
    return;
  }
  ASSERT_TRUE(want->table.Equals(got->table)) << context;
  ASSERT_EQ(want->min_columns, got->min_columns) << context;
  ASSERT_EQ(want->max_columns, got->max_columns) << context;
  ASSERT_EQ(want->records_dropped, got->records_dropped) << context;
  ASSERT_EQ(want->remainder_offset, got->remainder_offset) << context;
  ASSERT_EQ(want->quarantine.entries().size(), got->quarantine.entries().size())
      << context;
  for (size_t q = 0; q < want->quarantine.entries().size(); ++q) {
    ASSERT_EQ(want->quarantine.entries()[q].begin,
              got->quarantine.entries()[q].begin)
        << context << " quarantine entry " << q;
    ASSERT_EQ(want->quarantine.entries()[q].end, got->quarantine.entries()[q].end)
        << context << " quarantine entry " << q;
    ASSERT_EQ(want->quarantine.entries()[q].raw, got->quarantine.entries()[q].raw)
        << context << " quarantine entry " << q;
  }
}

// The headline sweep: >= 10k seeded inputs, every registered format,
// tagging modes and error policies rotating with the seed, field-gather
// output compared field by field against symbol sort.
TEST(TransposeDifferentialTest, GatherMatchesSymbolSortOnSeededInputs) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  // 2048 seeds x 5 formats = 10240 distinct inputs.
  constexpr uint64_t kSeedsPerFormat = 2048;
  for (const NamedFormat& format : formats) {
    for (uint64_t seed = 0; seed < kSeedsPerFormat; ++seed) {
      const std::string input = InputForSeed(format, seed);
      ParseOptions options = OptionsForSeed(format, seed);

      options.transpose_mode = TransposeMode::kSymbolSort;
      const Result<ParseOutput> reference = Parser::Parse(input, options);
      options.transpose_mode = TransposeMode::kFieldGather;
      const Result<ParseOutput> got = Parser::Parse(input, options);

      const std::string context = format.name + " seed " +
                                  std::to_string(seed);
      ASSERT_NO_FATAL_FAILURE(ExpectOutputsEqual(reference, got, context));
    }
  }
}

// The intermediate state, not just the final table: both modes must build
// byte-identical concatenated symbol strings with identical per-column
// offsets and histograms — the CSS layout equivalence the convert step
// relies on.
TEST(TransposeDifferentialTest, CssLayoutsMatchAcrossModes) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (const NamedFormat& format : formats) {
    for (uint64_t seed = 0; seed < 256; ++seed) {
      const std::string input = InputForSeed(format, seed * 31 + 7);
      ParseOptions options = OptionsForSeed(format, seed);
      options.error_policy = ErrorPolicy::kNull;  // step harness: no repair

      options.transpose_mode = TransposeMode::kSymbolSort;
      auto hs = StepHarness::Make(input, options);
      const Status ss = hs->RunThroughPartition();
      options.transpose_mode = TransposeMode::kFieldGather;
      auto hg = StepHarness::Make(input, options);
      const Status sg = hg->RunThroughPartition();

      const std::string context = format.name + " seed " +
                                  std::to_string(seed);
      ASSERT_EQ(ss.ok(), sg.ok()) << context;
      if (!ss.ok()) {
        ASSERT_EQ(ss.ToString(), sg.ToString()) << context;
        continue;
      }
      ASSERT_EQ(hs->state.num_partitions, hg->state.num_partitions)
          << context;
      ASSERT_EQ(hs->state.column_css_offsets, hg->state.column_css_offsets)
          << context;
      ASSERT_EQ(hs->state.column_histogram, hg->state.column_histogram)
          << context;
      ASSERT_EQ(hs->state.css.size(), hg->state.css.size()) << context;
      for (size_t i = 0; i < hs->state.css.size(); ++i) {
        ASSERT_EQ(hs->state.css[i], hg->state.css[i])
            << context << " css byte " << i;
      }
    }
  }
}

// Kernel axis: the gather path consumes the symbol-flag bitmaps, which the
// SIMD subsystem produces — both transpose modes must agree under every
// kernel resolution, not just the build default.
TEST(TransposeDifferentialTest, ModesAgreeUnderScalarAndSimdKernels) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (simd::KernelKind kernel :
       {simd::KernelKind::kScalar, simd::KernelKind::kSimd}) {
    for (const NamedFormat& format : formats) {
      for (uint64_t seed = 0; seed < 128; ++seed) {
        const std::string input = InputForSeed(format, seed * 17 + 3);
        ParseOptions options = OptionsForSeed(format, seed);
        options.kernel = kernel;

        options.transpose_mode = TransposeMode::kSymbolSort;
        const Result<ParseOutput> reference = Parser::Parse(input, options);
        options.transpose_mode = TransposeMode::kFieldGather;
        const Result<ParseOutput> got = Parser::Parse(input, options);

        const std::string context =
            format.name + " seed " + std::to_string(seed) + " kernel " +
            (kernel == simd::KernelKind::kScalar ? "scalar" : "simd");
        ASSERT_NO_FATAL_FAILURE(ExpectOutputsEqual(reference, got, context));
      }
    }
  }
}

// Partition-size axis: the streaming parser re-runs the transposition per
// partition with cross-partition carry; the modes must agree for partition
// sizes from degenerate (every record its own partition) to several
// records per partition.
TEST(TransposeDifferentialTest, StreamingPartitionsMatchAcrossModes) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (int64_t partition_size : {int64_t{256}, int64_t{1024}, int64_t{8192}}) {
    for (const NamedFormat& format : formats) {
      if (format.name == "extended_log") continue;  // covered by the sweep
      for (uint64_t seed = 0; seed < 64; ++seed) {
        const std::string input = InputForSeed(format, seed * 13 + 5);
        StreamingOptions streaming;
        streaming.base = OptionsForSeed(format, seed);
        streaming.partition_size = partition_size;

        streaming.base.transpose_mode = TransposeMode::kSymbolSort;
        const Result<StreamingResult> reference =
            StreamingParser::Parse(input, streaming);
        streaming.base.transpose_mode = TransposeMode::kFieldGather;
        const Result<StreamingResult> got =
            StreamingParser::Parse(input, streaming);

        const std::string context = format.name + " seed " +
                                    std::to_string(seed) + " partition " +
                                    std::to_string(partition_size);
        ASSERT_EQ(reference.ok(), got.ok()) << context;
        if (!reference.ok()) {
          ASSERT_EQ(reference.status().ToString(), got.status().ToString())
              << context;
          continue;
        }
        ASSERT_TRUE(reference->table.Equals(got->table)) << context;
        ASSERT_EQ(reference->quarantine.entries().size(),
                  got->quarantine.entries().size())
            << context;
      }
    }
  }
}

// Planner axis: the adaptive planner decides the per-stream tuning
// (kernel, chunk size, tagging, transpose) from the stream's head sample;
// whatever it chooses must be bit-identical to the planner-disabled static
// defaults — monolithically and across streaming partition seams, where a
// planned chunk/tagging choice interacts with carry-over splitting.
TEST(TransposeDifferentialTest, PlannedStreamsMatchStaticDefaults) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (const NamedFormat& format : formats) {
    if (format.name == "extended_log") continue;  // covered by the sweep
    for (uint64_t seed = 0; seed < 96; ++seed) {
      const std::string input = InputForSeed(format, seed * 19 + 11);
      StreamingOptions streaming;
      streaming.base.format = format.format;
      streaming.base.error_policy = static_cast<ErrorPolicy>(seed % 4);
      streaming.base.column_count_policy = (seed % 2) != 0
                                               ? ColumnCountPolicy::kReject
                                               : ColumnCountPolicy::kRobust;
      streaming.partition_size = (seed % 3 == 0) ? 512 : 4096;

      streaming.base.planner = PlannerMode::kDisabled;
      const Result<StreamingResult> want =
          StreamingParser::Parse(input, streaming);
      streaming.base.planner = PlannerMode::kForce;
      const Result<StreamingResult> got =
          StreamingParser::Parse(input, streaming);

      const std::string context =
          format.name + " seed " + std::to_string(seed);
      ASSERT_EQ(want.ok(), got.ok())
          << context << ": "
          << (want.ok() ? got.status() : want.status()).ToString();
      if (!want.ok()) {
        ASSERT_EQ(want.status().ToString(), got.status().ToString())
            << context;
        continue;
      }
      ASSERT_TRUE(want->table.Equals(got->table)) << context;
      ASSERT_EQ(want->quarantine.entries().size(),
                got->quarantine.entries().size())
          << context;
    }
  }
}

// Generated-dialect axis: seeded random DialectSpecs (src/dialect) ride
// the same symbol-sort vs field-gather comparison — the gather path's
// whole-field copies must honour runtime-compiled flag conventions
// (notably the fixed-width *inclusive* field boundary, where the boundary
// byte is both the field's end and its last value byte) exactly like the
// paper's per-symbol sort. PARPARAW_DIALECT_SEEDS overrides the seed
// count (default 48).
dialect::DialectSpec DialectSpecForSeed(uint64_t seed) {
  Rng rng(seed * 257 + 11);
  dialect::DialectSpec spec;
  spec.name = "gen-" + std::to_string(seed);
  if (rng.Next() % 4 == 0) {
    const int fields = 1 + static_cast<int>(rng.Next() % 3);
    for (int f = 0; f < fields; ++f) {
      spec.fixed_widths.push_back(1 + static_cast<int>(rng.Next() % 4));
    }
    spec.quote = 0;
    return spec;
  }
  static const uint8_t kFieldDelims[] = {',', ';', '\t', '|'};
  static const char* const kRecordDelims[] = {"\n", "\r\n", "%$"};
  spec.field_delimiter = kFieldDelims[rng.Next() % 4];
  spec.record_delimiter = kRecordDelims[rng.Next() % 3];
  spec.quote = (rng.Next() % 4 == 0) ? 0 : '"';
  spec.escape_style = (rng.Next() % 2 == 0)
                          ? dialect::EscapeStyle::kDoubledQuote
                          : dialect::EscapeStyle::kBackslash;
  spec.comment = (rng.Next() % 3 == 0) ? '#' : 0;
  spec.skip_empty_lines = rng.Next() % 2 == 0;
  spec.strict_quotes = rng.Next() % 2 == 0;
  return spec;
}

std::string DialectInputForSeed(const dialect::DialectSpec& spec,
                                uint64_t seed) {
  Rng rng(seed + 5);
  if (!spec.fixed_widths.empty()) {
    int64_t width = 0;
    for (int w : spec.fixed_widths) width += w;
    std::string input;
    const int records = 4 + static_cast<int>(seed % 12);
    for (int r = 0; r < records; ++r) {
      for (int64_t i = 0; i < width; ++i) {
        input.push_back(static_cast<char>('a' + rng.Next() % 26));
      }
      if (rng.Next() % 7 == 0) input.pop_back();  // broken record
      input += spec.record_delimiter;
    }
    return input;
  }
  std::string input = InputForSeed({spec.name, Format{}}, seed);
  if (spec.field_delimiter != ',' && spec.field_delimiter != 0) {
    for (char& ch : input) {
      if (ch == ',') ch = static_cast<char>(spec.field_delimiter);
    }
  }
  if (spec.record_delimiter != "\n") {
    std::string rewritten;
    rewritten.reserve(input.size() * 2);
    for (char ch : input) {
      if (ch == '\n') {
        rewritten += spec.record_delimiter;
      } else {
        rewritten.push_back(ch);
      }
    }
    input = std::move(rewritten);
  }
  return input;
}

uint64_t DialectSeedCount() {
  const char* env = std::getenv("PARPARAW_DIALECT_SEEDS");
  return env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 10)
                                        : 48;
}

TEST(TransposeDifferentialTest, GeneratedDialectsAgreeAcrossModes) {
  const uint64_t seeds = DialectSeedCount();
  int swept = 0;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    const dialect::DialectSpec spec = DialectSpecForSeed(seed);
    auto compiled = dialect::Compile(spec);
    ASSERT_TRUE(compiled.ok()) << spec.name << ": "
                               << compiled.status().ToString();
    if (!compiled->within_budget) continue;  // fallback bypasses transpose
    const std::string input = DialectInputForSeed(spec, seed);
    ParseOptions options;
    options.dialect = spec;
    options.chunk_size = ChunkSizeForSeed(seed);
    options.tagging_mode = TaggingMode::kRecordTags;

    options.transpose_mode = TransposeMode::kSymbolSort;
    const Result<ParseOutput> reference = Parser::Parse(input, options);
    options.transpose_mode = TransposeMode::kFieldGather;
    const Result<ParseOutput> got = Parser::Parse(input, options);
    ASSERT_NO_FATAL_FAILURE(ExpectOutputsEqual(reference, got, spec.name));
    ++swept;
  }
  EXPECT_GT(swept, static_cast<int>(seeds / 2));
}

// Oracle axis: for within-budget dialects the scalar wide-automaton walk
// (dialect::FallbackParse — the path over-budget dialects take) and the
// full parallel pipeline under both transpose modes must produce the same
// table from the same spec. This pins the packed Dfa, the SymbolFlags
// conventions and both transposition paths to one reference semantics.
TEST(TransposeDifferentialTest, FallbackWalkMatchesPipelineOnDialects) {
  const uint64_t seeds = DialectSeedCount();
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    const dialect::DialectSpec spec = DialectSpecForSeed(seed * 7 + 1);
    auto compiled = dialect::Compile(spec);
    ASSERT_TRUE(compiled.ok()) << spec.name;
    if (!compiled->within_budget) continue;
    const std::string input = DialectInputForSeed(spec, seed);

    ParseOptions options;  // defaults: kRecordTags, kRobust, kNull policy
    const Result<ParseOutput> walked =
        dialect::FallbackParse(input, *compiled, options);

    for (TransposeMode mode :
         {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
      ParseOptions pipeline;
      pipeline.dialect = spec;
      pipeline.transpose_mode = mode;
      const Result<ParseOutput> piped = Parser::Parse(input, pipeline);
      const std::string context =
          spec.name + (mode == TransposeMode::kSymbolSort ? " sort"
                                                          : " gather");
      ASSERT_EQ(walked.ok(), piped.ok())
          << context << ": "
          << (walked.ok() ? piped.status().ToString()
                          : walked.status().ToString());
      if (!walked.ok()) continue;
      ASSERT_TRUE(walked->table.Equals(piped->table)) << context;
      ASSERT_EQ(walked->min_columns, piped->min_columns) << context;
      ASSERT_EQ(walked->max_columns, piped->max_columns) << context;
    }
  }
}

// Fault axis: with the gather allocation failpoint firing on its n-th hit,
// a gather-mode parse either fails with the injected kResourceExhausted or
// — once the trigger is exhausted — succeeds bit-identical to the
// fault-free run. Never a crash or silently different data.
TEST(TransposeDifferentialTest, GatherAllocFaultsFailCleanOrMatch) {
  const NamedFormat rfc = {"rfc4180", *Rfc4180Format()};
  FailpointRegistry& registry = FailpointRegistry::Instance();
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const std::string input = InputForSeed(rfc, seed * 7 + 2);
    ParseOptions options = OptionsForSeed(rfc, seed);
    options.transpose_mode = TransposeMode::kFieldGather;
    const Result<ParseOutput> clean = Parser::Parse(input, options);

    for (int64_t nth = 1; nth <= 4; ++nth) {
      registry.Arm("alloc.gather",
                   robust::EveryNthTrigger(nth, /*transient=*/true));
      const Result<ParseOutput> faulted = Parser::Parse(input, options);
      registry.Disarm("alloc.gather");

      const std::string context =
          "seed " + std::to_string(seed) + " nth " + std::to_string(nth);
      if (!faulted.ok()) {
        // Either the fault surfaced — as resource exhaustion from a guarded
        // allocation or as the injected status from the bare site check —
        // or the input fails identically without any fault (e.g. a
        // terminator collision in the inline mode).
        const bool injected =
            faulted.status().code() == StatusCode::kResourceExhausted ||
            faulted.status().code() == StatusCode::kIoError;
        const bool same_as_clean =
            !clean.ok() &&
            clean.status().ToString() == faulted.status().ToString();
        EXPECT_TRUE(injected || same_as_clean)
            << context << ": " << faulted.status().ToString();
        continue;
      }
      ASSERT_TRUE(clean.ok()) << context;
      ASSERT_TRUE(clean->table.Equals(faulted->table)) << context;
    }
  }
  registry.DisarmAll();
}

}  // namespace
}  // namespace parparaw
