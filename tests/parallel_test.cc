#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "parallel/radix_sort.h"
#include "parallel/rle.h"
#include "parallel/scan.h"
#include "parallel/thread_pool.h"

namespace parparaw {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForNullPoolIsSequential) {
  int64_t sum = 0;
  ParallelForEach(nullptr, 0, 10, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

class ScanTest : public ::testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(ScanTest, InclusiveSumMatchesSequential) {
  const int n = GetParam();
  std::mt19937_64 rng(n);
  std::vector<int64_t> in(n);
  for (auto& v : in) v = static_cast<int64_t>(rng() % 100);
  std::vector<int64_t> expected(n);
  std::partial_sum(in.begin(), in.end(), expected.begin());

  std::vector<int64_t> two_pass(n), lookback(n);
  ScanTwoPass(&pool_, in.data(), two_pass.data(), n,
              [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
  ScanDecoupledLookback(&pool_, in.data(), lookback.data(), n,
                        [](int64_t a, int64_t b) { return a + b; },
                        int64_t{0});
  EXPECT_EQ(two_pass, expected);
  EXPECT_EQ(lookback, expected);
}

TEST_P(ScanTest, ExclusiveSumMatchesSequential) {
  const int n = GetParam();
  std::mt19937_64 rng(n * 7);
  std::vector<int64_t> in(n);
  for (auto& v : in) v = static_cast<int64_t>(rng() % 100);
  std::vector<int64_t> out(n);
  const int64_t total = ExclusivePrefixSum(&pool_, in.data(), out.data(), n);
  int64_t running = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], running) << "at " << i;
    running += in[i];
  }
  EXPECT_EQ(total, running);
}

TEST_P(ScanTest, NonCommutativeOperatorPreservesOrder) {
  // String concatenation is associative but not commutative; a scan that
  // reorders operands would corrupt the result.
  const int n = std::min(GetParam(), 3000);
  std::vector<std::string> in(n);
  for (int i = 0; i < n; ++i) in[i] = std::string(1, 'a' + (i % 26));
  std::vector<std::string> out(n);
  InclusiveScan(&pool_, in.data(), out.data(), n,
                [](const std::string& a, const std::string& b) { return a + b; },
                std::string());
  std::string expected;
  for (int i = 0; i < n; ++i) {
    expected += in[i];
    ASSERT_EQ(out[i], expected) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 7, 1000, 1024, 4097,
                                           50000));

TEST(ScanTest, InPlaceAliasing) {
  ThreadPool pool(4);
  std::vector<int64_t> data(5000, 1);
  InclusiveScan(&pool, data.data(), data.data(),
                static_cast<int64_t>(data.size()),
                [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<int64_t>(i + 1));
  }
}

TEST(ReduceTest, MatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> in(100000);
  std::mt19937_64 rng(3);
  for (auto& v : in) v = static_cast<int64_t>(rng() % 1000);
  const int64_t expected = std::accumulate(in.begin(), in.end(), int64_t{0});
  const int64_t got =
      Reduce(&pool, in.data(), static_cast<int64_t>(in.size()),
             [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
  EXPECT_EQ(got, expected);
}

TEST(ReduceTest, EmptyReturnsIdentity) {
  ThreadPool pool(2);
  const int64_t got = Reduce(&pool, static_cast<int64_t*>(nullptr), 0,
                             [](int64_t a, int64_t b) { return a + b; },
                             int64_t{-99});
  EXPECT_EQ(got, -99);
}

TEST(ReduceTest, MaxOperator) {
  ThreadPool pool(4);
  std::vector<int64_t> in(50000);
  std::mt19937_64 rng(11);
  int64_t expected = 0;
  for (auto& v : in) {
    v = static_cast<int64_t>(rng() % 1000000);
    expected = std::max(expected, v);
  }
  const int64_t got =
      Reduce(&pool, in.data(), static_cast<int64_t>(in.size()),
             [](int64_t a, int64_t b) { return std::max(a, b); }, int64_t{0});
  EXPECT_EQ(got, expected);
}

class RadixSortTest : public ::testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{4};
};

TEST_P(RadixSortTest, SortsAndIsStable) {
  const int n = GetParam();
  std::mt19937_64 rng(n + 1);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng() % 17);
  std::vector<uint32_t> perm;
  StableRadixSortPermutation(&pool_, keys, &perm);
  ASSERT_EQ(perm.size(), keys.size());
  // Sorted and stable: equal keys keep ascending original indices.
  for (int i = 1; i < n; ++i) {
    const uint32_t prev = keys[perm[i - 1]];
    const uint32_t cur = keys[perm[i]];
    ASSERT_LE(prev, cur);
    if (prev == cur) {
      ASSERT_LT(perm[i - 1], perm[i]);
    }
  }
  // Permutation is a bijection.
  std::vector<uint8_t> seen(n, 0);
  for (uint32_t p : perm) {
    ASSERT_LT(p, static_cast<uint32_t>(n));
    ASSERT_FALSE(seen[p]);
    seen[p] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortTest,
                         ::testing::Values(0, 1, 2, 100, 4096, 100000));

TEST(RadixSortTest, HistogramMatchesCounts) {
  ThreadPool pool(4);
  std::vector<uint32_t> keys = {3, 1, 4, 1, 5, 2, 6, 5, 3, 5};
  std::vector<uint32_t> perm;
  std::vector<uint64_t> histogram;
  ASSERT_TRUE(
      StableRadixSortWithHistogram(&pool, &keys, &perm, 7, &histogram).ok());
  ASSERT_EQ(histogram.size(), 7u);
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[5], 3u);
  // Keys are now sorted.
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LE(keys[i - 1], keys[i]);
}

// Regression: a key at or beyond num_partitions used to be silently skipped
// in the histogram, desynchronizing every CSS offset derived from it. It is
// an internal-invariant violation and must fail loudly.
TEST(RadixSortTest, OutOfDomainKeyIsAnInternalError) {
  ThreadPool pool(4);
  std::vector<uint32_t> keys = {3, 1, 9, 2};  // 9 >= num_partitions
  std::vector<uint32_t> perm;
  std::vector<uint64_t> histogram;
  const Status st =
      StableRadixSortWithHistogram(&pool, &keys, &perm, 7, &histogram);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("9"), std::string::npos) << st.message();
  // The keys were left untouched (no partial reorder).
  EXPECT_EQ(keys, (std::vector<uint32_t>{3, 1, 9, 2}));
}

// Regression: significant_bits > 32 used to drive the pass loop to
// `key >> shift` with shift >= 32 — undefined behaviour on uint32_t (the
// UBSan build catches the shift). The request is clamped to the key width.
TEST(RadixSortTest, SignificantBitsAbove32AreClamped) {
  ThreadPool pool(4);
  std::mt19937_64 rng(40);
  std::vector<uint32_t> keys(4096);
  for (auto& k : keys) k = static_cast<uint32_t>(rng());
  RadixSortOptions options;
  options.significant_bits = 40;
  std::vector<uint32_t> perm;
  StableRadixSortPermutation(&pool, keys, &perm, options);
  ASSERT_EQ(perm.size(), keys.size());
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

TEST(RadixSortTest, WideBitsPerPass) {
  ThreadPool pool(4);
  std::mt19937_64 rng(9);
  std::vector<uint32_t> keys(10000);
  for (auto& k : keys) k = static_cast<uint32_t>(rng());
  for (int bits : {1, 4, 8, 11, 16}) {
    RadixSortOptions options;
    options.bits_per_pass = bits;
    options.significant_bits = 32;
    std::vector<uint32_t> perm;
    StableRadixSortPermutation(&pool, keys, &perm, options);
    for (size_t i = 1; i < keys.size(); ++i) {
      ASSERT_LE(keys[perm[i - 1]], keys[perm[i]]) << "bits=" << bits;
    }
  }
}

TEST(RadixSortTest, ApplyPermutationGathers) {
  ThreadPool pool(2);
  std::vector<uint32_t> perm = {2, 0, 1};
  std::vector<char> in = {'a', 'b', 'c'};
  std::vector<char> out;
  ApplyPermutation(&pool, perm, in, &out);
  EXPECT_EQ(out, (std::vector<char>{'c', 'a', 'b'}));
}

TEST(RleTest, EncodesRuns) {
  ThreadPool pool(4);
  std::vector<uint32_t> in = {7, 7, 7, 2, 2, 9, 7, 7};
  std::vector<uint32_t> values;
  std::vector<int64_t> lengths;
  RunLengthEncode(&pool, in, &values, &lengths);
  EXPECT_EQ(values, (std::vector<uint32_t>{7, 2, 9, 7}));
  EXPECT_EQ(lengths, (std::vector<int64_t>{3, 2, 1, 2}));
}

TEST(RleTest, EmptyAndSingle) {
  ThreadPool pool(2);
  std::vector<uint32_t> values;
  std::vector<int64_t> lengths;
  RunLengthEncode(&pool, std::vector<uint32_t>{}, &values, &lengths);
  EXPECT_TRUE(values.empty());
  RunLengthEncode(&pool, std::vector<uint32_t>{42}, &values, &lengths);
  EXPECT_EQ(values, std::vector<uint32_t>{42});
  EXPECT_EQ(lengths, std::vector<int64_t>{1});
}

TEST(StreamCompactTest, KeepsFlagged) {
  ThreadPool pool(2);
  std::vector<int> in = {1, 2, 3, 4, 5};
  std::vector<uint8_t> flags = {1, 0, 1, 0, 1};
  std::vector<int> out;
  StreamCompact(&pool, in, flags, &out);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5}));
}

}  // namespace
}  // namespace parparaw
