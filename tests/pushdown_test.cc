#include <gtest/gtest.h>

#include "baseline/sequential_parser.h"
#include "columnar/dictionary.h"
#include "core/parser.h"
#include "query/pushdown.h"
#include "query/query.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(PushdownTest, MatchesParseThenFilter) {
  const std::string csv = GenerateTaxiLike(66, 64 * 1024);
  ParseOptions options;
  options.schema = TaxiSchema();
  const Predicate predicate{6, CompareOp::kEq, "Y"};

  // Reference: parse everything, then gather matching rows.
  auto full = Parser::Parse(csv, options);
  ASSERT_TRUE(full.ok());
  auto selection = EvaluatePredicate(full->table, predicate);
  ASSERT_TRUE(selection.ok());
  auto expected = GatherRows(full->table, *selection);
  ASSERT_TRUE(expected.ok());

  PushdownStats stats;
  auto pushed = ParseWithPushdown(csv, options, predicate, &stats);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  EXPECT_TRUE(pushed->table.Equals(*expected));
  EXPECT_EQ(stats.records_scanned, full->table.num_rows);
  EXPECT_EQ(stats.records_selected, expected->num_rows);
  EXPECT_LT(stats.Selectivity(), 0.2);  // 'Y' is ~5% of rows
}

TEST(PushdownTest, WorksOnQuotedData) {
  const std::string csv =
      "1,\"match, with\ncomma\"\n2,\"other\"\n3,\"also match\"\n";
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("text", DataType::String()));
  auto pushed = ParseWithPushdown(csv, options,
                                  {1, CompareOp::kContains, "match"});
  ASSERT_TRUE(pushed.ok());
  ASSERT_EQ(pushed->table.num_rows, 2);
  EXPECT_EQ(pushed->table.columns[0].Value<int64_t>(0), 1);
  EXPECT_EQ(pushed->table.columns[0].Value<int64_t>(1), 3);
}

TEST(PushdownTest, InvalidConfigurations) {
  ParseOptions no_schema;
  EXPECT_FALSE(
      ParseWithPushdown("a\n", no_schema, {0, CompareOp::kEq, "a"}).ok());

  ParseOptions options;
  options.schema.AddField(Field("a", DataType::String()));
  EXPECT_FALSE(
      ParseWithPushdown("a\n", options, {5, CompareOp::kEq, "a"}).ok());

  options.skip_records = {1};
  EXPECT_FALSE(
      ParseWithPushdown("a\n", options, {0, CompareOp::kEq, "a"}).ok());
  options.skip_records.clear();
  options.column_count_policy = ColumnCountPolicy::kReject;
  EXPECT_FALSE(
      ParseWithPushdown("a\n", options, {0, CompareOp::kEq, "a"}).ok());
}

TEST(PushdownTest, NoMatches) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::Int64()));
  auto pushed = ParseWithPushdown("1\n2\n3\n", options,
                                  {0, CompareOp::kGt, "100"});
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(pushed->table.num_rows, 0);
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Column column(DataType::String());
  column.AppendString("red");
  column.AppendString("green");
  column.AppendString("red");
  column.AppendNull();
  column.AppendString("blue");
  column.AppendString("green");
  auto encoded = DictionaryEncode(column);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->cardinality(), 3);
  EXPECT_EQ(encoded->codes,
            (std::vector<int32_t>{0, 1, 0, -1, 2, 1}));
  EXPECT_EQ(encoded->dictionary.StringValue(0), "red");
  EXPECT_EQ(encoded->dictionary.StringValue(2), "blue");
  const Column decoded = encoded->Decode();
  EXPECT_TRUE(decoded.Equals(column));
}

TEST(DictionaryTest, CompressionOnLowCardinality) {
  ParseOptions options;
  options.schema = TaxiSchema();
  const std::string csv = GenerateTaxiLike(5, 64 * 1024);
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());
  const Column& flags = parsed->table.columns[6];  // Y/N column
  auto encoded = DictionaryEncode(flags);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->cardinality(), 2);
  // 4 bytes/row codes beat 8-byte offsets + data? Not necessarily for
  // 1-char strings, but the dictionary itself must be tiny.
  EXPECT_LE(encoded->dictionary.TotalBufferBytes(), 64);
  EXPECT_TRUE(encoded->Decode().Equals(flags));
}

TEST(DictionaryTest, TypeAndEmptyEdgeCases) {
  Column ints(DataType::Int64());
  ints.AppendValue<int64_t>(1);
  EXPECT_FALSE(DictionaryEncode(ints).ok());

  Column empty(DataType::String());
  empty.Allocate(0);
  auto encoded = DictionaryEncode(empty);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->num_rows(), 0);
  EXPECT_EQ(encoded->cardinality(), 0);
  EXPECT_EQ(encoded->Decode().length(), 0);
}

TEST(LineitemTest, ParsesUnderPipeDsv) {
  DsvOptions dsv;
  dsv.field_delimiter = '|';
  dsv.quote = 0;
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  options.schema = LineitemSchema();
  options.validate = true;
  const std::string data = GenerateLineitemLike(3, 64 * 1024);
  auto result = Parser::Parse(data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_columns(), 16);
  EXPECT_GT(result->table.num_rows, 100);
  EXPECT_EQ(result->table.NumRejected(), 0);
  // Parity with the sequential reference.
  auto expected = SequentialParser::Parse(data, options);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result->table.Equals(expected->table));
  // TPC-H Q1-style sanity: aggregate by returnflag+linestatus.
  QuerySpec spec;
  spec.group_by = 8;
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kSum, 4)};
  auto q1 = RunQuery(result->table, spec);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->num_rows, 3);  // R, N, A
}

}  // namespace
}  // namespace parparaw
