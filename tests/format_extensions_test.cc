#include <gtest/gtest.h>

#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "dfa/formats.h"
#include "sim/timeline.h"

namespace parparaw {
namespace {

TEST(CrlfTest, CrlfRecordsParseCleanly) {
  DsvOptions dsv;
  dsv.ignore_carriage_return = true;
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok()) << format.status().ToString();
  ParseOptions options;
  options.format = *format;
  auto result = Parser::Parse("a,b\r\nc,d\r\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[1].StringValue(0), "b");  // no \r tail
  EXPECT_EQ(result->table.columns[0].StringValue(1), "c");
}

TEST(CrlfTest, CarriageReturnInsideQuotesIsData) {
  DsvOptions dsv;
  dsv.ignore_carriage_return = true;
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  auto result = Parser::Parse("\"a\rb\",c\r\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.columns[0].StringValue(0), "a\rb");
}

TEST(CrlfTest, WithoutOptionCrIsData) {
  auto result = Parser::Parse("a,b\r\nc,d\r\n", ParseOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.columns[1].StringValue(0), "b\r");
}

TEST(CrlfTest, InvalidCombinations) {
  DsvOptions dsv;
  dsv.ignore_carriage_return = true;
  dsv.record_delimiter = '\r';
  EXPECT_FALSE(DsvFormat(dsv).ok());
}

TEST(EscapeTest, BackslashEscapesInsideQuotes) {
  DsvOptions dsv;
  dsv.escape = '\\';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok()) << format.status().ToString();
  ParseOptions options;
  options.format = *format;
  // \" -> literal quote, \\ -> literal backslash, \n (escaped newline
  // char) -> literal newline byte.
  auto result = Parser::Parse("\"a\\\"b\",\"c\\\\d\",\"e\\,f\"\n", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "a\"b");
  EXPECT_EQ(result->table.columns[1].StringValue(0), "c\\d");
  EXPECT_EQ(result->table.columns[2].StringValue(0), "e,f");
}

TEST(EscapeTest, EscapedDelimitersStayData) {
  DsvOptions dsv;
  dsv.escape = '\\';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  auto result = Parser::Parse("\"x\\\ny\",z\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "x\ny");
}

TEST(EscapeTest, OutsideQuotesBackslashIsData) {
  DsvOptions dsv;
  dsv.escape = '\\';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  auto result = Parser::Parse("a\\b,c\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.columns[0].StringValue(0), "a\\b");
}

TEST(EscapeTest, CollidingEscapeRejected) {
  DsvOptions dsv;
  dsv.escape = '"';
  EXPECT_FALSE(DsvFormat(dsv).ok());
  dsv.escape = ',';
  EXPECT_FALSE(DsvFormat(dsv).ok());
}

TEST(EscapeTest, ParityWithSequentialAcrossChunkSizes) {
  DsvOptions dsv;
  dsv.escape = '\\';
  dsv.ignore_carriage_return = true;
  dsv.comment = '#';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  const std::string input =
      "# header \\ comment \"\r\n"
      "\"a\\\"x\",1\r\n"
      "plain,\"multi\\\nline\"\r\n"
      "\"esc\\\\\",2\r\n";
  for (size_t chunk : {1u, 2u, 3u, 7u, 31u}) {
    ParseOptions options;
    options.format = *format;
    options.chunk_size = chunk;
    auto expected = SequentialParser::Parse(input, options);
    ASSERT_TRUE(expected.ok());
    auto got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "chunk " << chunk;
    EXPECT_EQ(got->table.num_rows, 3);
  }
}

TEST(MultiDeviceTimelineTest, TransferBoundWorkScalesWithDevices) {
  // When transfers dominate, K devices provide K independent links.
  std::vector<PartitionStages> stages(8);
  for (auto& s : stages) {
    s.h2d_seconds = 2.0;
    s.parse_seconds = 0.1;
    s.d2h_seconds = 0.1;
  }
  const double one = StreamingTimeline::ScheduleMultiDevice(stages, 1).makespan;
  const double two = StreamingTimeline::ScheduleMultiDevice(stages, 2).makespan;
  const double four = StreamingTimeline::ScheduleMultiDevice(stages, 4).makespan;
  EXPECT_LT(two, one * 0.65);
  EXPECT_LT(four, two * 0.75);
}

TEST(MultiDeviceTimelineTest, CarryOverChainsParses) {
  // Parse-bound work does NOT scale: the carry-over couples parse(p) to
  // parse(p-1) across devices (the Fig. 7 dependency taken literally).
  std::vector<PartitionStages> stages(8);
  for (auto& s : stages) {
    s.h2d_seconds = 0.05;
    s.parse_seconds = 1.0;
    s.d2h_seconds = 0.05;
  }
  const double one = StreamingTimeline::ScheduleMultiDevice(stages, 1).makespan;
  const double four = StreamingTimeline::ScheduleMultiDevice(stages, 4).makespan;
  EXPECT_NEAR(one, four, 0.2);
}

TEST(MultiDeviceTimelineTest, SingleDeviceMatchesSchedule) {
  std::vector<PartitionStages> stages(5);
  for (auto& s : stages) {
    s.h2d_seconds = 0.3;
    s.parse_seconds = 0.7;
    s.d2h_seconds = 0.2;
    s.carry_copy_seconds = 0.01;
  }
  const double a = StreamingTimeline::Schedule(stages).makespan;
  const double b = StreamingTimeline::ScheduleMultiDevice(stages, 1).makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace parparaw
