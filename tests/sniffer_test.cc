#include <gtest/gtest.h>

#include "dfa/sniffer.h"
#include "parallel/segmented.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(SnifferTest, DetectsCommaWithHeader) {
  auto result = SniffDsvFormat(
      "id,name,amount\n1,alice,10.5\n2,bob,3.25\n3,carol,7.0\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->options.field_delimiter, ',');
  EXPECT_EQ(result->num_columns, 3u);
  EXPECT_TRUE(result->has_header);
  EXPECT_GT(result->confidence, 0.99);
}

TEST(SnifferTest, DetectsTsvWithoutHeader) {
  auto result = SniffDsvFormat("1\taa\t2.5\n2\tbb\t3.5\n3\tcc\t4.5\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.field_delimiter, '\t');
  EXPECT_EQ(result->num_columns, 3u);
  EXPECT_FALSE(result->has_header);
}

TEST(SnifferTest, DetectsPipeSeparatedLineitem) {
  const std::string sample = GenerateLineitemLike(2, 8 * 1024);
  auto result = SniffDsvFormat(sample);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.field_delimiter, '|');
  EXPECT_EQ(result->num_columns, 16u);
  EXPECT_FALSE(result->has_header);
  EXPECT_GT(result->confidence, 0.99);
}

TEST(SnifferTest, QuotedCommasDoNotConfuseColumnCount) {
  const std::string sample = GenerateYelpLike(2, 16 * 1024);
  auto result = SniffDsvFormat(sample);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.field_delimiter, ',');
  EXPECT_EQ(result->options.quote, '"');
  EXPECT_EQ(result->num_columns, 9u);
}

TEST(SnifferTest, CrlfDetection) {
  auto result = SniffDsvFormat("a,b\r\nc,d\r\ne,f\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->options.ignore_carriage_return);
  EXPECT_EQ(result->num_columns, 2u);
  auto lf_only = SniffDsvFormat("a,b\nc,d\n");
  ASSERT_TRUE(lf_only.ok());
  EXPECT_FALSE(lf_only->options.ignore_carriage_return);
}

TEST(SnifferTest, SemicolonDialect) {
  auto result = SniffDsvFormat("1;2,5;x\n3;4,5;y\n7;8,25;z\n");
  ASSERT_TRUE(result.ok());
  // Continental CSV: ';' delimits, ',' is the decimal mark.
  EXPECT_EQ(result->options.field_delimiter, ';');
  EXPECT_EQ(result->num_columns, 3u);
}

TEST(SnifferTest, EmptySampleFails) {
  EXPECT_FALSE(SniffDsvFormat("").ok());
}

TEST(SegmentedTest, ExclusiveScanPerSegment) {
  ThreadPool pool(4);
  const std::vector<int64_t> in = {1, 2, 3, 4, 5, 6};
  const std::vector<int64_t> offsets = {0, 2, 2, 6};
  std::vector<int64_t> out;
  SegmentedExclusiveScan(&pool, in, offsets,
                         [](int64_t a, int64_t b) { return a + b; },
                         int64_t{0}, &out);
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1, 0, 3, 7, 12}));
}

TEST(SegmentedTest, ReducePerSegmentWithEmpty) {
  ThreadPool pool(4);
  const std::vector<int64_t> in = {5, 1, 7, 2};
  const std::vector<int64_t> offsets = {0, 1, 1, 4};
  std::vector<int64_t> out;
  SegmentedReduce(&pool, in, offsets,
                  [](int64_t a, int64_t b) { return std::max(a, b); },
                  int64_t{-1}, &out);
  EXPECT_EQ(out, (std::vector<int64_t>{5, -1, 7}));
}

TEST(SegmentedTest, RunHeadsRestartAtSegmentBoundaries) {
  ThreadPool pool(2);
  const std::vector<uint32_t> in = {7, 7, 7, 7, 9, 9};
  const std::vector<int64_t> offsets = {0, 2, 6};
  std::vector<uint8_t> heads;
  SegmentedRunHeads(&pool, in, offsets, &heads);
  // Segment 0: [7,7] -> heads 1,0. Segment 1: [7,7,9,9] -> 1,0,1,0.
  EXPECT_EQ(heads, (std::vector<uint8_t>{1, 0, 1, 0, 1, 0}));
}

TEST(SegmentedTest, MatchesUnsegmentedOnSingleSegment) {
  ThreadPool pool(4);
  std::vector<int64_t> in(1000);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int64_t>(i % 7);
  const std::vector<int64_t> offsets = {0,
                                        static_cast<int64_t>(in.size())};
  std::vector<int64_t> scanned;
  SegmentedExclusiveScan(&pool, in, offsets,
                         [](int64_t a, int64_t b) { return a + b; },
                         int64_t{0}, &scanned);
  int64_t running = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(scanned[i], running);
    running += in[i];
  }
}

}  // namespace
}  // namespace parparaw
