#include <gtest/gtest.h>

#include <cstdio>

#include "io/file.h"
#include "loader/bulk_loader.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(BulkLoaderTest, SniffsHeaderAndTypes) {
  const std::string csv =
      "id,name,amount,day\n"
      "1,alice,10.5,2023-01-01\n"
      "2,bob,3.25,2023-01-02\n"
      "3,carol,7.0,2023-01-03\n";
  auto result = BulkLoader::LoadBuffer(csv);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = result->table;
  ASSERT_EQ(table.num_rows, 3);
  ASSERT_EQ(table.num_columns(), 4);
  EXPECT_EQ(table.schema.field(0).name, "id");
  EXPECT_TRUE(table.schema.field(0).type == DataType::Int64());
  EXPECT_EQ(table.schema.field(2).name, "amount");
  EXPECT_TRUE(table.schema.field(2).type == DataType::Float64());
  EXPECT_TRUE(table.schema.field(3).type == DataType::Date32());
  EXPECT_EQ(table.columns[1].StringValue(2), "carol");
  EXPECT_EQ(result->rows_rejected, 0);
  ASSERT_EQ(result->statistics.size(), 4u);
  EXPECT_DOUBLE_EQ(*result->statistics[0].numeric_max, 3);
  EXPECT_FALSE(result->ReportToString().empty());
}

TEST(BulkLoaderTest, ExplicitSchemaAndFormat) {
  DsvOptions dsv;
  dsv.field_delimiter = '|';
  dsv.quote = 0;
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  LoadOptions options;
  options.format = *format;
  options.schema = LineitemSchema();
  options.header = 0;
  options.partition_size = 16 * 1024;
  const std::string data = GenerateLineitemLike(1, 64 * 1024);
  auto result = BulkLoader::LoadBuffer(data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_columns(), 16);
  EXPECT_GT(result->rows_loaded, 100);
  EXPECT_EQ(result->rows_rejected, 0);
}

TEST(BulkLoaderTest, LoadFileRoundTrip) {
  const std::string path = "/tmp/parparaw_loader_test.csv";
  const std::string csv = GenerateTaxiLike(44, 32 * 1024);
  ASSERT_TRUE(WriteStringToFile(path, csv).ok());
  LoadOptions options;
  options.schema = TaxiSchema();
  options.header = 0;
  auto from_file = BulkLoader::LoadFile(path, options);
  ASSERT_TRUE(from_file.ok());
  auto from_buffer = BulkLoader::LoadBuffer(csv, options);
  ASSERT_TRUE(from_buffer.ok());
  EXPECT_TRUE(from_file->table.Equals(from_buffer->table));
  std::remove(path.c_str());
}

TEST(BulkLoaderTest, MissingFileAndEmptyBuffer) {
  EXPECT_FALSE(BulkLoader::LoadFile("/nonexistent/x.csv").ok());
  LoadOptions options;
  options.schema.AddField(Field("a", DataType::String()));
  options.header = 0;
  auto result = BulkLoader::LoadBuffer("", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_loaded, 0);
}

TEST(BulkLoaderTest, RejectAccounting) {
  LoadOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("v", DataType::Float64()));
  options.header = 0;
  auto result =
      BulkLoader::LoadBuffer("1,2.5\nbad,3.5\n3,oops\n4,4.5\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_loaded, 4);
  EXPECT_EQ(result->rows_rejected, 2);
}

TEST(BulkLoaderTest, TsvSniffedEndToEnd) {
  std::string tsv = "k\tcount\n";
  for (int i = 0; i < 50; ++i) {
    tsv += "key" + std::to_string(i % 5) + "\t" + std::to_string(i) + "\n";
  }
  auto result = BulkLoader::LoadBuffer(tsv);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->dialect.options.field_delimiter, '\t');
  EXPECT_EQ(result->table.num_columns(), 2);
  EXPECT_EQ(result->table.num_rows, 50);
  EXPECT_EQ(result->table.schema.field(1).name, "count");
  EXPECT_TRUE(result->table.schema.field(1).type == DataType::Int64());
}

}  // namespace
}  // namespace parparaw
