#include <gtest/gtest.h>

#include "convert/inference.h"

namespace parparaw {
namespace {

TEST(ClassifyFieldTest, Classifications) {
  EXPECT_EQ(ClassifyField(""), InferredKind::kEmpty);
  EXPECT_EQ(ClassifyField("  "), InferredKind::kEmpty);
  EXPECT_EQ(ClassifyField("42"), InferredKind::kInt64);
  EXPECT_EQ(ClassifyField("-7"), InferredKind::kInt64);
  EXPECT_EQ(ClassifyField("3.14"), InferredKind::kFloat64);
  EXPECT_EQ(ClassifyField("1e6"), InferredKind::kFloat64);
  EXPECT_EQ(ClassifyField("2020-05-01"), InferredKind::kDate);
  EXPECT_EQ(ClassifyField("2020-05-01 10:30:00"), InferredKind::kTimestamp);
  EXPECT_EQ(ClassifyField("true"), InferredKind::kBool);
  EXPECT_EQ(ClassifyField("hello"), InferredKind::kString);
  EXPECT_EQ(ClassifyField("12abc"), InferredKind::kString);
}

TEST(JoinTest, IdentityAndIdempotence) {
  for (InferredKind k :
       {InferredKind::kEmpty, InferredKind::kBool, InferredKind::kInt64,
        InferredKind::kFloat64, InferredKind::kDate, InferredKind::kTimestamp,
        InferredKind::kString}) {
    EXPECT_EQ(Join(InferredKind::kEmpty, k), k);
    EXPECT_EQ(Join(k, InferredKind::kEmpty), k);
    EXPECT_EQ(Join(k, k), k);
  }
}

TEST(JoinTest, NumericAndTemporalChains) {
  EXPECT_EQ(Join(InferredKind::kInt64, InferredKind::kFloat64),
            InferredKind::kFloat64);
  EXPECT_EQ(Join(InferredKind::kFloat64, InferredKind::kInt64),
            InferredKind::kFloat64);
  EXPECT_EQ(Join(InferredKind::kDate, InferredKind::kTimestamp),
            InferredKind::kTimestamp);
  EXPECT_EQ(Join(InferredKind::kInt64, InferredKind::kDate),
            InferredKind::kString);
  EXPECT_EQ(Join(InferredKind::kBool, InferredKind::kInt64),
            InferredKind::kString);
  EXPECT_EQ(Join(InferredKind::kString, InferredKind::kInt64),
            InferredKind::kString);
}

TEST(JoinTest, AssociativeAndCommutative) {
  const InferredKind kinds[] = {
      InferredKind::kEmpty, InferredKind::kBool,     InferredKind::kInt64,
      InferredKind::kFloat64, InferredKind::kDate,   InferredKind::kTimestamp,
      InferredKind::kString};
  for (InferredKind a : kinds) {
    for (InferredKind b : kinds) {
      EXPECT_EQ(Join(a, b), Join(b, a));
      for (InferredKind c : kinds) {
        EXPECT_EQ(Join(Join(a, b), c), Join(a, Join(b, c)))
            << InferredKindToString(a) << " " << InferredKindToString(b)
            << " " << InferredKindToString(c);
      }
    }
  }
}

TEST(KindToDataTypeTest, Mapping) {
  EXPECT_TRUE(KindToDataType(InferredKind::kInt64) == DataType::Int64());
  EXPECT_TRUE(KindToDataType(InferredKind::kFloat64) == DataType::Float64());
  EXPECT_TRUE(KindToDataType(InferredKind::kDate) == DataType::Date32());
  EXPECT_TRUE(KindToDataType(InferredKind::kTimestamp) ==
              DataType::TimestampMicros());
  EXPECT_TRUE(KindToDataType(InferredKind::kEmpty) == DataType::String());
  EXPECT_TRUE(KindToDataType(InferredKind::kString) == DataType::String());
  EXPECT_TRUE(KindToDataType(InferredKind::kBool) == DataType::Bool());
}

}  // namespace
}  // namespace parparaw
