#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "dfa/formats.h"
#include "simd/dispatch.h"
#include "text/unicode.h"
#include "test_util.h"

// Chunk-boundary behaviour for multibyte UTF-8 input (§4.2): every chunked
// pass adjusts its begin offset to the next code-point start, and the
// adjustment must be applied identically by the scalar pipeline and every
// src/simd kernel level — a disagreement would make the context and bitmap
// steps disagree about chunk extents and silently corrupt the bitmaps.

namespace parparaw {
namespace {

using simd::KernelLevel;

class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(KernelLevel level) {
    simd::SetForcedKernelLevel(level);
  }
  ~ScopedKernelLevel() { simd::SetForcedKernelLevel(std::nullopt); }
};

std::vector<KernelLevel> AllLevels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar, KernelLevel::kSwar};
  for (KernelLevel level :
       {KernelLevel::kSse42, KernelLevel::kAvx2, KernelLevel::kNeon}) {
    if (simd::KernelLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

/// Reference implementation: smallest boundary >= pos, giving up after the
/// three continuation bytes a valid lead can be followed by (mirrors the
/// documented contract on invalid sequences).
size_t NaiveAdjust(const uint8_t* data, size_t size, size_t pos) {
  if (pos > size) return size;
  const size_t limit = pos + 3;
  while (pos < size && pos < limit && IsUtf8ContinuationByte(data[pos])) ++pos;
  return pos;
}

// One-, two-, three-, and four-byte code points in one string; the
// adjustment is checked at every byte position.
TEST(Utf8BoundaryTest, AdjustChunkBeginAtEveryPosition) {
  // "a é ț 汉 𝛑 🚀 z" without the spaces, covering lengths 1-4.
  const std::string input = "a\xC3\xA9\xC8\x9B\xE6\xB1\x89\xF0\x9D\x9B\x91\xF0\x9F\x9A\x80z";
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  for (size_t pos = 0; pos <= input.size() + 2; ++pos) {
    EXPECT_EQ(AdjustChunkBeginUtf8(data, input.size(), pos),
              NaiveAdjust(data, input.size(), std::min(pos, input.size())))
        << "pos " << pos;
  }
}

// Sequences synthesised from code points at the encoding-length breakpoints.
TEST(Utf8BoundaryTest, EncodeAndAdjustAtLengthBreakpoints) {
  const struct {
    uint32_t code_point;
    int expected_length;
  } kCases[] = {
      {0x7F, 1},    {0x80, 2},     {0x7FF, 2},    {0x800, 3},
      {0xFFFF, 3},  {0x10000, 4},  {0x10FFFF, 4},
  };
  for (const auto& c : kCases) {
    uint8_t buf[8] = {};
    const int n = EncodeUtf8(c.code_point, buf);
    ASSERT_EQ(n, c.expected_length) << std::hex << c.code_point;
    EXPECT_EQ(Utf8SequenceLength(buf[0]), n) << std::hex << c.code_point;
    // From any offset inside the sequence, the next boundary is its end.
    for (int pos = 1; pos < n; ++pos) {
      EXPECT_EQ(AdjustChunkBeginUtf8(buf, static_cast<size_t>(n),
                                     static_cast<size_t>(pos)),
                static_cast<size_t>(n))
          << std::hex << c.code_point << " pos " << pos;
    }
    EXPECT_EQ(AdjustChunkBeginUtf8(buf, static_cast<size_t>(n), 0), 0u);
  }
}

std::string MultibyteCsv() {
  // Fields mixing all sequence lengths with quoting, embedded delimiters,
  // and multibyte symbols straddling arbitrary chunk boundaries.
  std::string input;
  input += "caf\xC3\xA9,\xE6\xB1\x89\xE5\xAD\x97,plain\n";
  input += "\"\xF0\x9D\x9B\x91,\xF0\x9F\x9A\x80\",x\xC8\x9By,\"q\"\"\xC3\x9F\"\n";
  input += "\xE2\x86\x92\xE2\x86\x92,,end\xF0\x9F\x9A\x80\n";
  return input;
}

// Chunk sizes 1-8 place a boundary inside every multibyte sequence at some
// point; the chunked parse must match the sequential baseline and be
// identical across all kernel levels, including the intermediate bitmaps.
TEST(Utf8BoundaryTest, ChunkedParsesMatchSequentialAtTinyChunkSizes) {
  const std::string input = MultibyteCsv();
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());

  ParseOptions sequential_options;
  sequential_options.format = *format;
  Result<ParseOutput> baseline =
      SequentialParser::Parse(input, sequential_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t chunk_size = 1; chunk_size <= 8; ++chunk_size) {
    for (KernelLevel level : AllLevels()) {
      ScopedKernelLevel force(level);
      ParseOptions options;
      options.format = *format;
      options.chunk_size = chunk_size;
      options.encoding = TextEncoding::kUtf8;
      Result<ParseOutput> got = Parser::Parse(input, options);
      const std::string context = std::string("chunk_size ") +
                                  std::to_string(chunk_size) + " level " +
                                  simd::KernelLevelName(level);
      ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
      EXPECT_TRUE(baseline->table.Equals(got->table)) << context;
    }
  }
}

// The context and bitmap steps must agree on the adjusted chunk ranges for
// every level: identical per-chunk transition vectors and per-byte flags
// even when a chunk's nominal begin lands mid-sequence and the chunk
// becomes empty after adjustment.
TEST(Utf8BoundaryTest, StepsAgreeOnAdjustedChunksAcrossLevels) {
  const std::string input = MultibyteCsv();
  for (size_t chunk_size = 1; chunk_size <= 4; ++chunk_size) {
    ParseOptions options;
    options.chunk_size = chunk_size;
    options.encoding = TextEncoding::kUtf8;

    simd::SetForcedKernelLevel(KernelLevel::kScalar);
    auto scalar = StepHarness::Make(input, options);
    ASSERT_NE(scalar, nullptr);
    ASSERT_TRUE(scalar->RunThroughBitmaps().ok());
    simd::SetForcedKernelLevel(std::nullopt);

    for (KernelLevel level : AllLevels()) {
      ScopedKernelLevel force(level);
      auto harness = StepHarness::Make(input, options);
      ASSERT_NE(harness, nullptr);
      ASSERT_TRUE(harness->RunThroughBitmaps().ok());
      const std::string context = std::string("chunk_size ") +
                                  std::to_string(chunk_size) + " level " +
                                  simd::KernelLevelName(level);
      ASSERT_EQ(scalar->state.entry_states, harness->state.entry_states)
          << context;
      ASSERT_EQ(scalar->state.symbol_flags, harness->state.symbol_flags)
          << context;
      ASSERT_EQ(scalar->state.record_counts, harness->state.record_counts)
          << context;
    }
  }
}

}  // namespace
}  // namespace parparaw
