#include <gtest/gtest.h>

#include "dfa/formats.h"

namespace parparaw {
namespace {

using rfc4180::kEnc;
using rfc4180::kEof;
using rfc4180::kEor;
using rfc4180::kEsc;
using rfc4180::kFld;
using rfc4180::kInv;

class Rfc4180Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto format = Rfc4180Format();
    ASSERT_TRUE(format.ok()) << format.status().ToString();
    format_ = *std::move(format);
  }
  Format format_;
};

TEST_F(Rfc4180Test, HasSixStatesAndFourGroups) {
  EXPECT_EQ(format_.dfa.num_states(), 6);
  EXPECT_EQ(format_.dfa.num_symbol_groups(), 4);  // \n, ", , and catch-all
  EXPECT_EQ(format_.dfa.start_state(), kEor);
  EXPECT_EQ(format_.dfa.invalid_state(), kInv);
}

TEST_F(Rfc4180Test, Table1TransitionsExactly) {
  const Dfa& dfa = format_.dfa;
  // Table 1, row '\n': EOR ENC EOR EOR EOR INV.
  const int expected_nl[6] = {kEor, kEnc, kEor, kEor, kEor, kInv};
  // Row '"': ENC ESC INV ENC ENC INV.
  const int expected_quote[6] = {kEnc, kEsc, kInv, kEnc, kEnc, kInv};
  // Row ',': EOF ENC EOF EOF EOF INV.
  const int expected_comma[6] = {kEof, kEnc, kEof, kEof, kEof, kInv};
  // Row '*': FLD ENC FLD FLD INV INV.
  const int expected_star[6] = {kFld, kEnc, kFld, kFld, kInv, kInv};
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(dfa.NextStateForSymbol(s, '\n'), expected_nl[s]) << s;
    EXPECT_EQ(dfa.NextStateForSymbol(s, '"'), expected_quote[s]) << s;
    EXPECT_EQ(dfa.NextStateForSymbol(s, ','), expected_comma[s]) << s;
    EXPECT_EQ(dfa.NextStateForSymbol(s, 'z'), expected_star[s]) << s;
  }
}

TEST_F(Rfc4180Test, SymbolClassification) {
  const Dfa& dfa = format_.dfa;
  // Newline in a field context delimits a record.
  EXPECT_TRUE(dfa.Flags(kFld, dfa.SymbolGroup('\n')) &
              kSymbolRecordDelimiter);
  // Newline inside quotes is data.
  EXPECT_EQ(dfa.Flags(kEnc, dfa.SymbolGroup('\n')), kSymbolData);
  // Comma in a field delimits a field.
  EXPECT_TRUE(dfa.Flags(kFld, dfa.SymbolGroup(',')) & kSymbolFieldDelimiter);
  // Comma inside quotes is data.
  EXPECT_EQ(dfa.Flags(kEnc, dfa.SymbolGroup(',')), kSymbolData);
  // Opening quote is a control symbol.
  EXPECT_TRUE(dfa.Flags(kEor, dfa.SymbolGroup('"')) & kSymbolControl);
  // The second quote of a "" escape is data (a literal quote).
  EXPECT_EQ(dfa.Flags(kEsc, dfa.SymbolGroup('"')), kSymbolData);
  // Plain characters are data.
  EXPECT_EQ(dfa.Flags(kFld, dfa.SymbolGroup('x')), kSymbolData);
}

TEST_F(Rfc4180Test, AcceptanceAndMidRecordMask) {
  const Dfa& dfa = format_.dfa;
  EXPECT_TRUE(dfa.IsAccepting(kEor));
  EXPECT_TRUE(dfa.IsAccepting(kFld));
  EXPECT_TRUE(dfa.IsAccepting(kEof));
  EXPECT_TRUE(dfa.IsAccepting(kEsc));
  EXPECT_FALSE(dfa.IsAccepting(kEnc));  // unterminated quote
  EXPECT_FALSE(dfa.IsAccepting(kInv));
  EXPECT_FALSE(format_.IsMidRecordState(kEor));
  EXPECT_TRUE(format_.IsMidRecordState(kFld));
  EXPECT_TRUE(format_.IsMidRecordState(kEof));
  EXPECT_TRUE(format_.IsMidRecordState(kEsc));
  EXPECT_TRUE(format_.IsMidRecordState(kEnc));
}

TEST_F(Rfc4180Test, Figure2Walkthrough) {
  // "1941,199.99,"Bookcase"\n" should cycle FLD/EOF and quote states.
  const Dfa& dfa = format_.dfa;
  const std::string input = "1941,199.99,\"Bookcase\"\n";
  const uint8_t end = dfa.Run(dfa.start_state(),
                              reinterpret_cast<const uint8_t*>(input.data()),
                              input.size());
  EXPECT_EQ(end, kEor);
}

TEST_F(Rfc4180Test, InvalidTransitions) {
  const Dfa& dfa = format_.dfa;
  // A quote inside an unquoted field is invalid.
  const std::string bad1 = "ab\"c";
  EXPECT_EQ(dfa.Run(kEor, reinterpret_cast<const uint8_t*>(bad1.data()),
                    bad1.size()),
            kInv);
  // Garbage after a closing quote is invalid.
  const std::string bad2 = "\"ab\"x";
  EXPECT_EQ(dfa.Run(kEor, reinterpret_cast<const uint8_t*>(bad2.data()),
                    bad2.size()),
            kInv);
}

TEST(DsvFormatTest, RejectsEqualDelimiters) {
  DsvOptions options;
  options.field_delimiter = '\n';
  options.record_delimiter = '\n';
  EXPECT_FALSE(DsvFormat(options).ok());
}

TEST(DsvFormatTest, TsvWithoutQuotes) {
  DsvOptions options;
  options.field_delimiter = '\t';
  options.quote = 0;
  auto format = DsvFormat(options);
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  // A double quote is ordinary data without quoting support.
  const std::string input = "a\"b\tc";
  const uint8_t end = dfa.Run(dfa.start_state(),
                              reinterpret_cast<const uint8_t*>(input.data()),
                              input.size());
  EXPECT_TRUE(dfa.IsAccepting(end));
  EXPECT_TRUE(dfa.Flags(dfa.start_state(), dfa.SymbolGroup('\t')) &
              kSymbolFieldDelimiter);
}

TEST(DsvFormatTest, CommentLinesAreControlOnly) {
  DsvOptions options;
  options.comment = '#';
  auto format = DsvFormat(options);
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  // '#' at record start enters the comment state.
  int state = dfa.start_state();
  const std::string line = "#a,b\"x\n";
  for (char c : line) {
    const int group = dfa.SymbolGroup(static_cast<uint8_t>(c));
    const uint8_t flags = dfa.Flags(state, group);
    // Nothing inside a comment is a record or field delimiter.
    EXPECT_EQ(flags & (kSymbolRecordDelimiter | kSymbolFieldDelimiter), 0)
        << "at '" << c << "'";
    state = dfa.NextState(state, group);
  }
  EXPECT_EQ(state, dfa.start_state());  // back at record start
}

TEST(DsvFormatTest, CommentMarkerInsideFieldIsData) {
  DsvOptions options;
  options.comment = '#';
  auto format = DsvFormat(options);
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  // 'a#b' : the '#' after field data is data, and the newline ends the
  // record normally.
  int state = dfa.start_state();
  uint8_t flags_hash = 0;
  for (char c : std::string("a#b")) {
    const int group = dfa.SymbolGroup(static_cast<uint8_t>(c));
    if (c == '#') flags_hash = dfa.Flags(state, group);
    state = dfa.NextState(state, group);
  }
  EXPECT_EQ(flags_hash, kSymbolData);
  EXPECT_TRUE(dfa.Flags(state, dfa.SymbolGroup('\n')) &
              kSymbolRecordDelimiter);
}

TEST(DsvFormatTest, SkipEmptyLines) {
  DsvOptions options;
  options.skip_empty_lines = true;
  auto format = DsvFormat(options);
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  // A newline at record start is control-only (no empty record).
  EXPECT_EQ(dfa.Flags(dfa.start_state(), dfa.SymbolGroup('\n')),
            kSymbolControl);
}

TEST(DsvFormatTest, LenientQuotes) {
  DsvOptions options;
  options.strict_quotes = false;
  auto format = DsvFormat(options);
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  const std::string input = "a\"b";
  const uint8_t end = dfa.Run(dfa.start_state(),
                              reinterpret_cast<const uint8_t*>(input.data()),
                              input.size());
  EXPECT_TRUE(dfa.IsAccepting(end));
}

TEST(ExtendedLogFormatTest, DirectivesAndQuotedStrings) {
  auto format = ExtendedLogFormat();
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  EXPECT_EQ(format->field_delimiter, ' ');
  // Walking a directive line ends back at record start with no record
  // delimiter seen.
  int state = dfa.start_state();
  int record_delims = 0;
  for (char c : std::string("#Fields: date time\n")) {
    const int group = dfa.SymbolGroup(static_cast<uint8_t>(c));
    if (dfa.Flags(state, group) & kSymbolRecordDelimiter) ++record_delims;
    state = dfa.NextState(state, group);
  }
  EXPECT_EQ(record_delims, 0);
  EXPECT_EQ(state, dfa.start_state());
}

}  // namespace
}  // namespace parparaw
