#include <gtest/gtest.h>

#include <random>

#include "columnar/statistics.h"
#include "core/parser.h"

namespace parparaw {
namespace {

TEST(StatisticsTest, NumericMinMaxNulls) {
  Column column(DataType::Int64());
  column.AppendValue<int64_t>(5);
  column.AppendNull();
  column.AppendValue<int64_t>(-3);
  column.AppendValue<int64_t>(100);
  column.AppendNull();
  auto stats = ComputeColumnStatistics(column);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 2);
  EXPECT_DOUBLE_EQ(*stats->numeric_min, -3);
  EXPECT_DOUBLE_EQ(*stats->numeric_max, 100);
  EXPECT_EQ(stats->distinct_estimate, 3);
}

TEST(StatisticsTest, StringMinMaxBytes) {
  Column column(DataType::String());
  column.AppendString("pear");
  column.AppendString("apple");
  column.AppendString("zebra");
  column.AppendNull();
  auto stats = ComputeColumnStatistics(column);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 1);
  EXPECT_EQ(*stats->string_min, "apple");
  EXPECT_EQ(*stats->string_max, "zebra");
  EXPECT_EQ(stats->string_bytes, 4 + 5 + 5);
  EXPECT_EQ(stats->distinct_estimate, 3);
  EXPECT_NE(stats->ToString().find("apple"), std::string::npos);
}

TEST(StatisticsTest, AllNullColumn) {
  Column column(DataType::Float64());
  column.AppendNull();
  column.AppendNull();
  auto stats = ComputeColumnStatistics(column);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 2);
  EXPECT_FALSE(stats->numeric_min.has_value());
  EXPECT_EQ(stats->distinct_estimate, 0);
  EXPECT_NE(stats->ToString().find("all NULL"), std::string::npos);
}

TEST(StatisticsTest, EmptyColumn) {
  Column column(DataType::Int64());
  column.Allocate(0);
  auto stats = ComputeColumnStatistics(column);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->null_count, 0);
  EXPECT_EQ(stats->distinct_estimate, 0);
}

TEST(StatisticsTest, DistinctEstimateAccuracy) {
  // HLL with 256 registers: expect roughly +/- 10-15% at 50k distincts.
  Column column(DataType::Int64());
  std::mt19937_64 rng(1);
  constexpr int64_t kDistinct = 50000;
  for (int64_t i = 0; i < kDistinct; ++i) {
    column.AppendValue<int64_t>(i);
    if (i % 3 == 0) column.AppendValue<int64_t>(i);  // duplicates
  }
  ThreadPool pool(4);
  auto stats = ComputeColumnStatistics(column, &pool);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->distinct_estimate, kDistinct * 0.8);
  EXPECT_LT(stats->distinct_estimate, kDistinct * 1.2);
}

TEST(StatisticsTest, ParallelMatchesSequential) {
  Column column(DataType::Float64());
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100000; ++i) {
    if (i % 97 == 0) {
      column.AppendNull();
    } else {
      column.AppendValue<double>(
          static_cast<double>(rng() % 1000000) / 100.0);
    }
  }
  ThreadPool pool(4);
  auto parallel = ComputeColumnStatistics(column, &pool);
  auto sequential = ComputeColumnStatistics(column, nullptr);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(parallel->null_count, sequential->null_count);
  EXPECT_DOUBLE_EQ(*parallel->numeric_min, *sequential->numeric_min);
  EXPECT_DOUBLE_EQ(*parallel->numeric_max, *sequential->numeric_max);
  EXPECT_EQ(parallel->distinct_estimate, sequential->distinct_estimate);
}

TEST(StatisticsTest, TableStatistics) {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("name", DataType::String()));
  auto parsed = Parser::Parse("1,a\n2,b\n3,\n", options);
  ASSERT_TRUE(parsed.ok());
  auto stats = ComputeTableStatistics(parsed->table);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 2u);
  EXPECT_DOUBLE_EQ(*(*stats)[0].numeric_max, 3);
  EXPECT_EQ(*(*stats)[1].string_min, "");
}

}  // namespace
}  // namespace parparaw
