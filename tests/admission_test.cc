// Edge tests for exec::AdmissionController (src/exec/admission.h): the
// shared semaphore behind multi-tenant partition budgets, request
// queue-depth shedding, and — since protocol v2 — deadline-bounded
// admission waits (AcquireFor).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/admission.h"

namespace parparaw {
namespace exec {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

const std::function<bool()> kNeverStop = [] { return false; };

TEST(AdmissionTest, AcquireForTimesOutAtTheDeadline) {
  AdmissionController admission;
  ASSERT_EQ(admission.TryAcquire(1), 1);
  const auto start = steady_clock::now();
  const int got =
      admission.AcquireFor(1, kNeverStop, start + milliseconds(40));
  EXPECT_EQ(got, AdmissionController::kTimedOut);
  EXPECT_GE(steady_clock::now() - start, milliseconds(40));
  // The failed wait must not leak a slot.
  EXPECT_EQ(admission.inflight(), 1);
  admission.Release();
  EXPECT_EQ(admission.inflight(), 0);
}

TEST(AdmissionTest, AcquireForTakesTheSlotWhenFree) {
  AdmissionController admission;
  const int got = admission.AcquireFor(
      2, kNeverStop, steady_clock::now() + milliseconds(50));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(admission.inflight(), 1);
  admission.Release();
}

TEST(AdmissionTest, AcquireForAdmitsWhenReleasedBeforeDeadline) {
  AdmissionController admission;
  ASSERT_EQ(admission.TryAcquire(1), 1);
  std::thread releaser([&] {
    std::this_thread::sleep_for(milliseconds(20));
    admission.Release();
  });
  // Generous deadline: the release, not the timeout, must admit us.
  const int got = admission.AcquireFor(
      1, kNeverStop, steady_clock::now() + std::chrono::seconds(10));
  EXPECT_EQ(got, 1);
  releaser.join();
  admission.Release();
  EXPECT_EQ(admission.inflight(), 0);
}

TEST(AdmissionTest, StopFlagWinsOverDeadlineDuringTimedWait) {
  AdmissionController admission;
  ASSERT_EQ(admission.TryAcquire(1), 1);
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(milliseconds(20));
    stop.store(true, std::memory_order_release);
    admission.Wake();
  });
  const auto start = steady_clock::now();
  const int got = admission.AcquireFor(
      1, [&] { return stop.load(std::memory_order_acquire); },
      start + std::chrono::seconds(10));
  EXPECT_EQ(got, AdmissionController::kStopped);
  // A stopped waiter returns well before the deadline and takes nothing.
  EXPECT_LT(steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_EQ(admission.inflight(), 1);
  stopper.join();
  admission.Release();
}

TEST(AdmissionTest, StopAlreadySetReturnsImmediatelyEvenWithSlotsFree) {
  AdmissionController admission;
  const int got = admission.AcquireFor(
      4, [] { return true; }, steady_clock::now() + std::chrono::seconds(10));
  EXPECT_EQ(got, AdmissionController::kStopped);
  EXPECT_EQ(admission.inflight(), 0);
}

TEST(AdmissionTest, ReleaseOfSeveralSlotsWakesSeveralWaiters) {
  AdmissionController admission;
  ASSERT_EQ(admission.TryAcquire(3), 1);
  ASSERT_EQ(admission.TryAcquire(3), 2);
  ASSERT_EQ(admission.TryAcquire(3), 3);
  std::atomic<int> admitted{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      if (admission.Acquire(3, kNeverStop) > 0) {
        admitted.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(admitted.load(std::memory_order_acquire), 0);
  // One Release(3) must wake all three parked waiters, not one.
  admission.Release(3);
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(admitted.load(std::memory_order_acquire), 3);
  EXPECT_EQ(admission.inflight(), 3);
  admission.Release(3);
  EXPECT_EQ(admission.inflight(), 0);
}

TEST(AdmissionTest, HeterogeneousLimitsAdmitConservatively) {
  // Two tenants with different limits share one count: the tight tenant
  // sheds at 2 while the loose one still admits up to 4.
  AdmissionController admission;
  ASSERT_EQ(admission.TryAcquire(2), 1);
  ASSERT_EQ(admission.TryAcquire(2), 2);
  EXPECT_LT(admission.TryAcquire(2), 0);  // tight tenant: full
  ASSERT_EQ(admission.TryAcquire(4), 3);  // loose tenant: still room
  ASSERT_EQ(admission.TryAcquire(4), 4);
  EXPECT_LT(admission.TryAcquire(4), 0);
  // A deadline-bounded waiter under the tight limit times out while the
  // count sits above its limit even though it is below the loose one.
  admission.Release();  // count 3: loose tenant has room, tight does not
  const int got = admission.AcquireFor(
      2, kNeverStop, steady_clock::now() + milliseconds(30));
  EXPECT_EQ(got, AdmissionController::kTimedOut);
  admission.Release(3);
  EXPECT_EQ(admission.inflight(), 0);
}

TEST(AdmissionTest, InflightGaugeSurvivesAcquireTimeoutRaces) {
  // N threads hammer AcquireFor with tiny deadlines while M threads
  // acquire/release for real; afterwards the gauge must read exactly 0 —
  // no slot leaked by a timeout racing a release.
  AdmissionController admission;
  std::atomic<bool> go{true};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&] {
      while (go.load(std::memory_order_acquire)) {
        if (admission.TryAcquire(2) > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          admission.Release();
        }
      }
    });
  }
  std::vector<std::thread> timers;
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> timed_out{0};
  for (int t = 0; t < 4; ++t) {
    timers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const int got = admission.AcquireFor(
            2, kNeverStop, steady_clock::now() + std::chrono::microseconds(200));
        if (got > 0) {
          admitted.fetch_add(1, std::memory_order_acq_rel);
          admission.Release();
        } else {
          timed_out.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (std::thread& timer : timers) timer.join();
  go.store(false, std::memory_order_release);
  for (std::thread& churner : churners) churner.join();
  EXPECT_EQ(admission.inflight(), 0)
      << "admitted=" << admitted.load() << " timed_out=" << timed_out.load();
}

}  // namespace
}  // namespace exec
}  // namespace parparaw
