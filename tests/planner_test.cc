#include "plan/planner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "core/parser.h"
#include "dfa/formats.h"
#include "obs/metrics.h"
#include "plan/tuning.h"
#include "robust/failpoint.h"
#include "simd/dispatch.h"
#include "workload/generators.h"

// The adaptive runtime planner (src/plan): deterministic sampling-based
// knob resolution, the Tuning contradiction taxonomy, the centralized
// environment-variable grammar, and the failpoint-driven fallback to the
// static defaults. The planner's bit-identity with the static
// configurations it replaces is covered by the planner axes of
// simd_differential_test and transpose_differential_test; this file covers
// the decision layer itself.

namespace parparaw {
namespace {

using plan::ParsePlan;
using simd::KernelLevel;

class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(KernelLevel level) {
    simd::SetForcedKernelLevel(level);
  }
  ~ScopedKernelLevel() { simd::SetForcedKernelLevel(std::nullopt); }
};

/// Arms a failpoint for the current scope; always disarms on destruction so
/// a failing ASSERT cannot leak an armed site into later tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& name, robust::FailpointTrigger trigger)
      : name_(name) {
    robust::FailpointRegistry::Instance().Arm(name_, std::move(trigger));
  }
  ~ScopedFailpoint() { robust::FailpointRegistry::Instance().Disarm(name_); }

 private:
  std::string name_;
};

Format PipeFormatNoQuotes() {
  DsvOptions dsv;
  dsv.field_delimiter = '|';
  dsv.quote = 0;
  auto format = DsvFormat(dsv);
  EXPECT_TRUE(format.ok()) << format.status().ToString();
  return *std::move(format);
}

void ExpectPlansEqual(const ParsePlan& a, const ParsePlan& b) {
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.kernel_level, b.kernel_level);
  EXPECT_EQ(a.chunk_size, b.chunk_size);
  EXPECT_EQ(a.tagging_mode, b.tagging_mode);
  EXPECT_EQ(a.transpose_mode, b.transpose_mode);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_EQ(a.planned, b.planned);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.stats.sample_bytes, b.stats.sample_bytes);
  EXPECT_EQ(a.stats.probe_chunks, b.stats.probe_chunks);
  EXPECT_EQ(a.stats.converged_chunks, b.stats.converged_chunks);
  EXPECT_EQ(a.stats.convergence_fraction, b.stats.convergence_fraction);
  EXPECT_EQ(a.stats.special_density, b.stats.special_density);
  EXPECT_EQ(a.stats.records, b.stats.records);
  EXPECT_EQ(a.stats.fields, b.stats.fields);
  EXPECT_EQ(a.stats.min_columns, b.stats.min_columns);
  EXPECT_EQ(a.stats.max_columns, b.stats.max_columns);
  EXPECT_EQ(a.stats.uniform_columns, b.stats.uniform_columns);
}

// --- determinism -----------------------------------------------------------

TEST(PlannerTest, SameBytesSamePlan) {
  for (uint64_t seed : {uint64_t{7}, uint64_t{41}}) {
    const std::string input = GenerateYelpLike(seed, 128 * 1024);
    ParseOptions options;
    auto first = plan::PlanParse(input, /*sample_truncated=*/false, options);
    auto second = plan::PlanParse(input, /*sample_truncated=*/false, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ExpectPlansEqual(*first, *second);
    EXPECT_TRUE(first->planned);
    EXPECT_FALSE(first->fallback);
  }
}

TEST(PlannerTest, SamplingClipsToBudgetDeterministically) {
  const std::string input = GenerateTaxiLike(3, 64 * 1024);
  ParseOptions options;
  options.sample_budget = 8 * 1024;
  auto clipped = plan::PlanParse(input, false, options);
  auto prefix =
      plan::PlanParse(std::string_view(input).substr(0, 8 * 1024), true,
                      options);
  ASSERT_TRUE(clipped.ok());
  ASSERT_TRUE(prefix.ok());
  // Planning the full input under an 8 KB budget is planning its 8 KB
  // prefix: the clipped bytes must never influence a decision.
  ExpectPlansEqual(*clipped, *prefix);
  EXPECT_EQ(clipped->stats.sample_bytes, 8 * 1024);
  EXPECT_TRUE(clipped->stats.truncated);
}

// --- decision quality ------------------------------------------------------

TEST(PlannerTest, ConvergentCorpusGetsLargeChunks) {
  // A quote-free DSV automaton collapses every speculative lane at the
  // first delimiter, so lineitem-like data is the paper's best case for
  // speculation: expect near-total convergence and the 4096-byte chunk.
  const std::string input = GenerateLineitemLike(11, 128 * 1024);
  ParseOptions options;
  options.format = PipeFormatNoQuotes();
  auto planned = plan::PlanParse(input, false, options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_GE(planned->stats.convergence_fraction, 0.9);
  EXPECT_EQ(planned->chunk_size, 4096u);
  EXPECT_EQ(planned->kernel, simd::KernelKind::kSimd);
  EXPECT_GT(planned->stats.records, 0);
}

TEST(PlannerTest, NonConvergentCorpusStepsChunksDown) {
  // Taxi-like data under RFC 4180 contains no quote bytes, so a lane
  // started inside a hypothetical quoted field never exits it and the
  // state vector never fully converges — each chunk's prefix gets
  // re-simulated, so the planner stays one step below the free-speculation
  // chunk while still amortising the per-chunk scan overhead.
  const std::string input = GenerateTaxiLike(5, 128 * 1024);
  ParseOptions options;
  auto planned = plan::PlanParse(input, false, options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_LT(planned->stats.convergence_fraction, 0.5);
  EXPECT_EQ(planned->chunk_size, 2048u);
  EXPECT_GT(planned->stats.records, 0);
}

TEST(PlannerTest, ScalarPipelineIgnoresConvergence) {
  // With the kernel resolved to the scalar reference there is no
  // speculation to price; the chunk choice must ignore the (here perfect)
  // convergence signal and pick the scalar amortisation step.
  ScopedKernelLevel force(KernelLevel::kScalar);
  const std::string input = GenerateLineitemLike(11, 64 * 1024);
  ParseOptions options;
  options.format = PipeFormatNoQuotes();
  auto planned = plan::PlanParse(input, false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->kernel_level, KernelLevel::kScalar);
  EXPECT_EQ(planned->chunk_size, 1024u);
}

TEST(PlannerTest, ShortSampleKeepsPaperChunk) {
  // Fewer bytes than one probe chunk: no convergence evidence, so the
  // planner must not extrapolate.
  ParseOptions options;
  auto planned = plan::PlanParse("a,b\nc,d\n", false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->stats.probe_chunks, 0);
  EXPECT_EQ(planned->chunk_size, 31u);
}

TEST(PlannerTest, PinnedKnobsAreRespected) {
  const std::string input = GenerateLineitemLike(2, 64 * 1024);
  ParseOptions options;
  options.format = PipeFormatNoQuotes();
  options.chunk_size = 77;
  options.tagging_mode = TaggingMode::kRecordTags;
  auto planned = plan::PlanParse(input, false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->chunk_size, 77u);
  EXPECT_EQ(planned->tagging_mode, TaggingMode::kRecordTags);
}

// --- tagging upgrade -------------------------------------------------------

std::string UniformCsv(int records) {
  std::string csv;
  for (int i = 0; i < records; ++i) {
    csv += "a" + std::to_string(i) + ",b,c\n";
  }
  return csv;
}

TEST(PlannerTest, UniformColumnsUnderRejectUpgradeTagging) {
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto planned = plan::PlanParse(UniformCsv(32), false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->stats.uniform_columns);
  EXPECT_EQ(planned->tagging_mode, TaggingMode::kVectorDelimited);
}

TEST(PlannerTest, RobustPolicyNeverUpgradesTagging) {
  // kRobust keeps ragged records, so the cheaper uniform-count encoding is
  // unsafe no matter what the sample shows.
  ParseOptions options;
  auto planned = plan::PlanParse(UniformCsv(32), false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->stats.uniform_columns);
  EXPECT_EQ(planned->tagging_mode, TaggingMode::kRecordTags);
}

TEST(PlannerTest, RaggedSampleNeverUpgradesTagging) {
  std::string csv = UniformCsv(32);
  csv += "only,two\n";
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto planned = plan::PlanParse(csv, false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_FALSE(planned->stats.uniform_columns);
  EXPECT_EQ(planned->tagging_mode, TaggingMode::kRecordTags);
}

TEST(PlannerTest, TooFewRecordsNeverUpgradeTagging) {
  // min == max over 3 records proves nothing; uniformity needs at least 8.
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto planned = plan::PlanParse(UniformCsv(3), false, options);
  ASSERT_TRUE(planned.ok());
  EXPECT_FALSE(planned->stats.uniform_columns);
  EXPECT_EQ(planned->tagging_mode, TaggingMode::kRecordTags);
}

// --- static resolution and plan application --------------------------------

TEST(PlannerTest, StaticPlanResolvesEveryAutoSentinel) {
  ParseOptions options;
  ParsePlan plan = plan::StaticPlan(options);
  EXPECT_EQ(plan.kernel, simd::KernelKind::kSimd);
  EXPECT_EQ(plan.chunk_size, 31u);
  EXPECT_EQ(plan.tagging_mode, TaggingMode::kRecordTags);
  EXPECT_NE(plan.transpose_mode, TransposeMode::kAuto);
  EXPECT_FALSE(plan.planned);
  EXPECT_FALSE(plan.fallback);
}

TEST(PlannerTest, StaticPlanPassesPinsThrough) {
  ParseOptions options;
  options.kernel = simd::KernelKind::kScalar;
  options.chunk_size = 77;
  options.tagging_mode = TaggingMode::kVectorDelimited;
  options.transpose_mode = TransposeMode::kSymbolSort;
  options.partition_size = 1 << 20;
  ParsePlan plan = plan::StaticPlan(options);
  EXPECT_EQ(plan.kernel, simd::KernelKind::kScalar);
  EXPECT_EQ(plan.kernel_level, KernelLevel::kScalar);
  EXPECT_EQ(plan.chunk_size, 77u);
  EXPECT_EQ(plan.tagging_mode, TaggingMode::kVectorDelimited);
  EXPECT_EQ(plan.transpose_mode, TransposeMode::kSymbolSort);
  EXPECT_EQ(plan.partition_size, size_t{1} << 20);
}

TEST(PlannerTest, ApplyPlanPinsEveryKnobAndDisablesReplanning) {
  ParsePlan plan;
  plan.kernel = simd::KernelKind::kScalar;
  plan.chunk_size = 1024;
  plan.tagging_mode = TaggingMode::kVectorDelimited;
  plan.transpose_mode = TransposeMode::kSymbolSort;
  plan.partition_size = 4096;
  ParseOptions options;
  plan::ApplyPlan(plan, &options);
  EXPECT_EQ(options.kernel, simd::KernelKind::kScalar);
  EXPECT_EQ(options.chunk_size, 1024u);
  EXPECT_EQ(options.tagging_mode, TaggingMode::kVectorDelimited);
  EXPECT_EQ(options.transpose_mode, TransposeMode::kSymbolSort);
  EXPECT_EQ(options.partition_size, 4096u);
  EXPECT_EQ(options.planner, PlannerMode::kDisabled);
}

TEST(PlannerTest, PlanStreamDisabledLeavesOptionsUntouched) {
  ParseOptions options;
  options.planner = PlannerMode::kDisabled;
  auto planned = plan::PlanStream("a,b\n", false, &options);
  ASSERT_TRUE(planned.ok());
  EXPECT_FALSE(planned->planned);
  EXPECT_EQ(options.chunk_size, 0u);
  EXPECT_EQ(options.kernel, simd::KernelKind::kAuto);
  EXPECT_EQ(options.planner, PlannerMode::kDisabled);
}

TEST(PlannerTest, PlanStreamSkipsSamplingWhenEverythingIsPinned) {
  ParseOptions options;
  options.kernel = simd::KernelKind::kScalar;
  options.chunk_size = 31;
  options.tagging_mode = TaggingMode::kRecordTags;
  options.transpose_mode = TransposeMode::kFieldGather;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  auto planned = plan::PlanStream(UniformCsv(16), false, &options);
  ASSERT_TRUE(planned.ok());
  EXPECT_FALSE(planned->planned);
  EXPECT_EQ(metrics.GetCounter("plan.runs")->Value(), 0);
}

TEST(PlannerTest, PlanStreamAppliesThePlanAndCountsTheRun) {
  const std::string input = GenerateLineitemLike(9, 64 * 1024);
  ParseOptions options;
  options.format = PipeFormatNoQuotes();
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  auto planned = plan::PlanStream(input, false, &options);
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->planned);
  EXPECT_EQ(options.chunk_size, planned->chunk_size);
  EXPECT_EQ(options.tagging_mode, planned->tagging_mode);
  EXPECT_EQ(options.planner, PlannerMode::kDisabled);
  EXPECT_EQ(metrics.GetCounter("plan.runs")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("plan.fallback")->Value(), 0);
  EXPECT_GT(metrics.GetCounter("plan.sampled_bytes")->Value(), 0);
}

// --- the Tuning contradiction taxonomy -------------------------------------

TEST(PlannerTest, DefaultOptionsValidate) {
  EXPECT_TRUE(ParseOptions().Validate().ok());
  ParseOptions forced;
  forced.planner = PlannerMode::kForce;
  EXPECT_TRUE(forced.Validate().ok());
}

TEST(PlannerTest, ForcedPlannerRejectsEveryPin) {
  const auto expect_invalid = [](const ParseOptions& options,
                                 const char* what) {
    Status status = options.Validate();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << what << ": " << status.ToString();
  };
  ParseOptions kernel_pin;
  kernel_pin.planner = PlannerMode::kForce;
  kernel_pin.kernel = simd::KernelKind::kScalar;
  expect_invalid(kernel_pin, "kernel");

  ParseOptions chunk_pin;
  chunk_pin.planner = PlannerMode::kForce;
  chunk_pin.chunk_size = 31;
  expect_invalid(chunk_pin, "chunk_size");

  ParseOptions tagging_pin;
  tagging_pin.planner = PlannerMode::kForce;
  tagging_pin.tagging_mode = TaggingMode::kRecordTags;
  expect_invalid(tagging_pin, "tagging_mode");

  ParseOptions transpose_pin;
  transpose_pin.planner = PlannerMode::kForce;
  transpose_pin.transpose_mode = TransposeMode::kFieldGather;
  expect_invalid(transpose_pin, "transpose_mode");

  ParseOptions partition_pin;
  partition_pin.planner = PlannerMode::kForce;
  partition_pin.partition_size = 1 << 20;
  expect_invalid(partition_pin, "partition_size");
}

TEST(PlannerTest, AutoPlannerAcceptsPins) {
  // kAuto respects pins (they just shrink what the sampler decides), so
  // the same combinations validate.
  ParseOptions options;
  options.kernel = simd::KernelKind::kScalar;
  options.chunk_size = 31;
  options.tagging_mode = TaggingMode::kRecordTags;
  options.transpose_mode = TransposeMode::kFieldGather;
  options.partition_size = 1 << 20;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(PlannerTest, SampleBudgetBounds) {
  ParseOptions zero;
  zero.sample_budget = 0;
  EXPECT_EQ(zero.Validate().code(), StatusCode::kInvalidArgument);
  zero.planner = PlannerMode::kDisabled;
  EXPECT_TRUE(zero.Validate().ok());

  ParseOptions huge;
  huge.sample_budget = size_t{32} << 20;
  EXPECT_EQ(huge.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, ChunkSizeUpperBound) {
  ParseOptions options;
  options.planner = PlannerMode::kDisabled;
  options.chunk_size = (size_t{1} << 24) + 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.chunk_size = size_t{1} << 24;
  EXPECT_TRUE(options.Validate().ok());
}

// --- environment grammar ---------------------------------------------------

TEST(PlannerTest, KernelEnvVocabulary) {
  using plan::internal::ParseKernelEnvValue;
  EXPECT_EQ(ParseKernelEnvValue("scalar"), KernelLevel::kScalar);
  EXPECT_EQ(ParseKernelEnvValue("swar"), KernelLevel::kSwar);
  EXPECT_EQ(ParseKernelEnvValue("sse42"), KernelLevel::kSse42);
  EXPECT_EQ(ParseKernelEnvValue("avx2"), KernelLevel::kAvx2);
  EXPECT_EQ(ParseKernelEnvValue("neon"), KernelLevel::kNeon);
  EXPECT_EQ(ParseKernelEnvValue("simd"), simd::DetectBestKernelLevel());
  EXPECT_EQ(ParseKernelEnvValue(nullptr), std::nullopt);
  EXPECT_EQ(ParseKernelEnvValue(""), std::nullopt);
  EXPECT_EQ(ParseKernelEnvValue("AVX2"), std::nullopt);
  EXPECT_EQ(ParseKernelEnvValue("warp"), std::nullopt);
}

TEST(PlannerTest, TransposeEnvVocabulary) {
  using plan::internal::ParseTransposeEnvValue;
  EXPECT_EQ(ParseTransposeEnvValue("field_gather"),
            TransposeMode::kFieldGather);
  EXPECT_EQ(ParseTransposeEnvValue("symbol_sort"), TransposeMode::kSymbolSort);
  EXPECT_EQ(ParseTransposeEnvValue(nullptr), std::nullopt);
  EXPECT_EQ(ParseTransposeEnvValue(""), std::nullopt);
  EXPECT_EQ(ParseTransposeEnvValue("auto"), std::nullopt);
}

TEST(PlannerTest, SimdDisabledEnvVocabulary) {
  using plan::internal::ParseSimdDisabledValue;
  EXPECT_FALSE(ParseSimdDisabledValue(nullptr));
  EXPECT_FALSE(ParseSimdDisabledValue(""));
  EXPECT_FALSE(ParseSimdDisabledValue("0"));
  EXPECT_TRUE(ParseSimdDisabledValue("1"));
  EXPECT_TRUE(ParseSimdDisabledValue("yes"));
}

// --- failpoint fallback ----------------------------------------------------

TEST(PlannerTest, SampleFaultFallsBackBitIdentically) {
  const std::string input = GenerateLineitemLike(13, 32 * 1024);
  ParseOptions reference_options;
  reference_options.format = PipeFormatNoQuotes();
  reference_options.planner = PlannerMode::kDisabled;
  auto reference = Parser::Parse(input, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const char* site : {"plan.sample", "plan.decide"}) {
    obs::MetricsRegistry metrics;
    ParseOptions options;
    options.format = PipeFormatNoQuotes();
    options.metrics = &metrics;
    ScopedFailpoint fault(site, robust::CountTrigger(1));
    auto parsed = Parser::Parse(input, options);
    ASSERT_TRUE(parsed.ok()) << site << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed->table.Equals(reference->table)) << site;
    EXPECT_EQ(metrics.GetCounter("plan.fallback")->Value(), 1) << site;
  }
}

TEST(PlannerTest, ForcedPlannerPropagatesSampleFault) {
  const std::string input = UniformCsv(64);
  ParseOptions options;
  options.planner = PlannerMode::kForce;
  ScopedFailpoint fault("plan.sample", robust::CountTrigger(1));
  auto parsed = Parser::Parse(input, options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("planner forced"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(PlannerTest, ForcedPlannerSucceedsWithoutFaults) {
  auto parsed = [] {
    ParseOptions options;
    options.planner = PlannerMode::kForce;
    return Parser::Parse(UniformCsv(64), options);
  }();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->table.num_rows, 64);
}

// --- reporting -------------------------------------------------------------

TEST(PlannerTest, ExplainRendersTheDecision) {
  const std::string input = GenerateLineitemLike(4, 64 * 1024);
  ParseOptions options;
  options.format = PipeFormatNoQuotes();
  auto planned = plan::PlanParse(input, false, options);
  ASSERT_TRUE(planned.ok());
  const std::string report = planned->Explain();
  EXPECT_NE(report.find("[planned]"), std::string::npos) << report;
  EXPECT_NE(report.find("chunk="), std::string::npos) << report;
  EXPECT_NE(report.find("stats:"), std::string::npos) << report;
  EXPECT_NE(report.find("reason:"), std::string::npos) << report;
  EXPECT_FALSE(planned->stats.ToString().empty());

  const std::string static_report = plan::StaticPlan(options).Explain();
  EXPECT_NE(static_report.find("[static]"), std::string::npos)
      << static_report;
}

}  // namespace
}  // namespace parparaw
