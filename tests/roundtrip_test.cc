#include <gtest/gtest.h>

#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "io/csv_writer.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

// Round-trip property: parse(write(parse(x))) == parse(x). The writer
// must re-quote embedded delimiters/quotes/newlines so that a second parse
// reconstructs the identical table.

TEST(RoundTripTest, QuotedTextSurvives) {
  ParseOptions options;
  options.schema = YelpSchema();
  const std::string csv = GenerateYelpLike(31, 64 * 1024);
  auto first = Parser::Parse(csv, options);
  ASSERT_TRUE(first.ok());

  auto rewritten = WriteCsv(first->table);
  ASSERT_TRUE(rewritten.ok());
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->table.Equals(first->table));
}

TEST(RoundTripTest, NumericTemporalSurvive) {
  ParseOptions options;
  options.schema = TaxiSchema();
  const std::string csv = GenerateTaxiLike(32, 64 * 1024);
  auto first = Parser::Parse(csv, options);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->table.NumRejected(), 0);

  auto rewritten = WriteCsv(first->table);
  ASSERT_TRUE(rewritten.ok());
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->table.Equals(first->table));
}

TEST(RoundTripTest, NullNumericsBecomeEmptyFieldsAndBack) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::Int64()));
  options.schema.AddField(Field("b", DataType::Float64()));
  auto first = Parser::Parse("1,\n,2.5\n,\n", options);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->table.columns[0].IsNull(1));

  auto rewritten = WriteCsv(first->table);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(*rewritten, "1,\n,2.5\n,\n");
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->table.Equals(first->table));
}

TEST(RoundTripTest, ExtremeDoublesExactly) {
  ParseOptions options;
  options.schema.AddField(Field("x", DataType::Float64()));
  const std::string csv =
      "0.1\n-1e-300\n1.7976931348623157e308\n3.141592653589793\n"
      "5e-324\n-0.0\n";
  auto first = Parser::Parse(csv, options);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->table.NumRejected(), 0);
  auto rewritten = WriteCsv(first->table);
  ASSERT_TRUE(rewritten.ok());
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->table.Equals(first->table));
}

TEST(RoundTripTest, RandomisedStringsWithHeader) {
  for (uint64_t seed = 50; seed < 54; ++seed) {
    RandomCsvOptions gen;
    gen.num_records = 60;
    gen.num_columns = 3;
    gen.embedded_delimiter_probability = 0.4;
    gen.escaped_quote_probability = 0.3;
    const std::string csv = GenerateRandomCsv(seed, gen);
    ParseOptions options;  // schema-less: all strings
    auto first = Parser::Parse(csv, options);
    ASSERT_TRUE(first.ok());

    CsvWriteOptions write_options;
    write_options.header = true;
    auto rewritten = WriteCsv(first->table, write_options);
    ASSERT_TRUE(rewritten.ok());

    ParseOptions reparse;
    reparse.skip_rows = 1;  // drop the emitted header
    for (int j = 0; j < first->table.num_columns(); ++j) {
      reparse.schema.AddField(Field("f" + std::to_string(j),
                                    DataType::String()));
    }
    auto second = Parser::Parse(*rewritten, reparse);
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(second->table.num_rows, first->table.num_rows);
    // Compare values; validity may differ for NULL-vs-empty strings (the
    // writer cannot distinguish them in CSV).
    for (int c = 0; c < first->table.num_columns(); ++c) {
      for (int64_t r = 0; r < first->table.num_rows; ++r) {
        const auto lhs = first->table.columns[c].IsNull(r)
                             ? std::string_view()
                             : first->table.columns[c].StringValue(r);
        const auto rhs = second->table.columns[c].IsNull(r)
                             ? std::string_view()
                             : second->table.columns[c].StringValue(r);
        ASSERT_EQ(lhs, rhs) << "seed " << seed << " col " << c << " row "
                            << r;
      }
    }
  }
}

}  // namespace
}  // namespace parparaw
