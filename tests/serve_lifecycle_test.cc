// Request-lifecycle robustness suite for parparawd: deadlines (typed
// kDeadlineExceeded with admission slots provably drained), graceful
// drain, client retry with seeded backoff, connect/IO timeouts against
// stalled peers, and a kill-and-restart soak through RetryingClient.
// scripts/check.sh serve runs this file under ASan/UBSan and in the
// TSan soak.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/reader.h"
#include "robust/failpoint.h"
#include "serve/client.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "serve/socket_io.h"
#include "workload/generators.h"

namespace parparaw {
namespace serve {
namespace {

std::string SmallCsv() {
  return "id,name,score\n1,alpha,3.5\n2,beta,4.0\n3,gamma,1.25\n";
}

/// Polls until both admission gauges are back to zero (slots released
/// asynchronously by watchdog cancels) and then asserts it.
void ExpectGaugesDrain(Server* server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((server->inflight_requests() != 0 ||
          server->exec_admission()->inflight() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server->inflight_requests(), 0);
  EXPECT_EQ(server->exec_admission()->inflight(), 0);
}

// --- deadlines ---

TEST(ServeDeadlineTest, ExpiresWaitingForASlotWithTypedError) {
  ServeOptions options;
  options.max_inflight_requests = 1;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Occupy the only request slot so the deadlined request can only wait.
  ASSERT_EQ(server.request_admission()->TryAcquire(1), 1);

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  RequestOptions request;
  request.deadline_ms = 60;
  const auto start = std::chrono::steady_clock::now();
  auto reply = client->Parse(SmallCsv(), request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  // It waited (no instant BUSY) but not much past the deadline.
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(60));
  // A deadline is a request error: the connection stays usable.
  EXPECT_FALSE(client->last_error_was_transport());
  EXPECT_TRUE(client->Ping().ok());

  server.request_admission()->Release();
  // Slot freed: the same request now completes.
  auto retry = client->Parse(SmallCsv(), request);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->busy);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  ExpectGaugesDrain(&server);
  server.Stop();
}

TEST(ServeDeadlineTest, ExpiresMidIngestAndReturnsEverySlot) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  // A parse that cannot finish in 1ms on any box: the deadline fires
  // inside the pipeline (executor hand-off checks or the watchdog), and
  // the answer must still be the typed error with the slots returned.
  const std::string csv = GenerateYelpLike(41, 4 * 1024 * 1024);
  RequestOptions request;
  request.deadline_ms = 1;
  request.partition_size = 64 * 1024;
  auto reply = client->Parse(csv, request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  // Without a deadline the same parse succeeds bit-identically.
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());
  auto full = client->Parse(csv);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_TRUE(full->table.Equals(*expected));

  EXPECT_GE(server.stats().deadline_exceeded, 1);
  ExpectGaugesDrain(&server);
  server.Stop();
}

TEST(ServeDeadlineTest, FailpointForcesExpiryDeterministically) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  robust::FailpointRegistry::Instance().Arm("serve.deadline",
                                            robust::CountTrigger(1));
  auto reply = client->Parse(SmallCsv());
  robust::FailpointRegistry::Instance().DisarmAll();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
  ExpectGaugesDrain(&server);
  server.Stop();
}

TEST(ServeDeadlineTest, QueryHonorsDeadlines) {
  ServeOptions options;
  options.max_inflight_requests = 1;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  ASSERT_EQ(server.request_admission()->TryAcquire(1), 1);

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  RequestOptions request;
  request.deadline_ms = 50;
  auto reply = client->Query(SmallCsv(),
                             Predicate(0, CompareOp::kIsNotNull), request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(client->Ping().ok());
  server.request_admission()->Release();
  ExpectGaugesDrain(&server);
  server.Stop();
}

// --- graceful drain ---

TEST(ServeDrainTest, LetsInflightRequestsFinish) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string csv = GenerateTaxiLike(51, 1024 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  std::atomic<bool> parse_ok{false};
  std::thread inflight([&] {
    auto client = Client::Connect(*port);
    if (!client.ok()) return;
    auto reply = client->Parse(csv);
    parse_ok.store(reply.ok() && !reply->busy &&
                       reply->table.Equals(*expected),
                   std::memory_order_release);
  });
  // Let the request reach the daemon before draining.
  const auto admitted_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.inflight_requests() == 0 &&
         std::chrono::steady_clock::now() < admitted_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(server.inflight_requests(), 0);

  EXPECT_TRUE(server.Drain(/*deadline_ms=*/20000));
  inflight.join();
  // The in-flight parse completed bit-identically through the drain.
  EXPECT_TRUE(parse_ok.load(std::memory_order_acquire));
  EXPECT_FALSE(server.running());
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.drained, 1);
  EXPECT_EQ(stats.drain_cancelled, 0);
  // Draining stopped the listener.
  EXPECT_FALSE(Client::Connect(*port, /*connect_timeout_ms=*/200).ok());
}

TEST(ServeDrainTest, CancelsStragglersAtTheDeadline) {
  ServeOptions options;
  options.max_inflight_requests = 2;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Occupy a request slot the drain cannot wait out: it must give up at
  // its deadline and count the straggler as cancelled.
  ASSERT_EQ(server.request_admission()->TryAcquire(2), 1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(server.Drain(/*deadline_ms=*/100));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(100));
  EXPECT_EQ(server.stats().drain_cancelled, 1);
  server.request_admission()->Release();
}

TEST(ServeDrainTest, NewRequestsDuringDrainAreShedBusy) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // A fresh connection: its thread is parked reading the first frame
  // header, so no post-response serve.drain check can race the Arm.
  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());

  // serve.drain failpoint: rehearse the connection-closes-after-response
  // race a real drain produces, deterministically.
  robust::FailpointRegistry::Instance().Arm("serve.drain",
                                            robust::CountTrigger(1));
  auto reply = client->Parse(SmallCsv());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();  // response first
  // ...then the daemon closed the connection: the next request fails at
  // the transport layer. The failpoint stays armed until then — the
  // connection thread only reaches its post-response check after we
  // already hold the reply, so disarming now would race it.
  ASSERT_FALSE(client->Ping().ok());
  EXPECT_TRUE(client->last_error_was_transport());
  robust::FailpointRegistry::Instance().DisarmAll();
  server.Stop();
}

// --- retry policy ---

TEST(ServeRetryTest, BusyStormConvergesBitIdenticalThroughRetries) {
  // Acceptance: a seeded kBusy storm against a 1-slot daemon, driven
  // through RetryPolicy, converges to responses bit-identical with a
  // direct Reader — and the sheds are visible in the retry stats, not
  // double-counted as completed requests.
  ServeOptions options;
  options.max_inflight_requests = 1;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string csv = GenerateLogLike(61, 128 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  // Hold the only slot briefly so every client's first attempt sheds.
  ASSERT_EQ(server.request_admission()->TryAcquire(1), 1);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.request_admission()->Release();
  });

  constexpr int kClients = 4;
  std::vector<RetryStats> stats(kClients);
  // NOT vector<bool>: each worker writes its own element concurrently,
  // and vector<bool>'s packed bits would make that a data race.
  std::vector<char> identical(kClients, 0);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      RetryPolicy policy;
      policy.seed = 100 + static_cast<uint64_t>(c);
      policy.max_attempts = 32;
      policy.base_delay_us = 2'000;
      policy.max_delay_us = 100'000;
      policy.budget_us = 30'000'000;
      RetryingClient client(*port, policy);
      auto reply = client.Parse(csv);
      identical[static_cast<size_t>(c)] =
          reply.ok() && !reply->busy && reply->table.Equals(*expected);
      stats[static_cast<size_t>(c)] = client.stats();
    });
  }
  for (std::thread& worker : workers) worker.join();
  releaser.join();

  int64_t total_sheds = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(identical[static_cast<size_t>(c)]) << "client " << c;
    // Counted once as a logical request, attempts >= 1.
    EXPECT_EQ(stats[static_cast<size_t>(c)].requests, 1);
    EXPECT_GE(stats[static_cast<size_t>(c)].attempts, 1);
    EXPECT_EQ(stats[static_cast<size_t>(c)].exhausted, 0);
    total_sheds += stats[static_cast<size_t>(c)].busy_sheds;
  }
  // The 150ms hold guarantees first attempts shed.
  EXPECT_GT(total_sheds, 0);
  EXPECT_GT(server.stats().busy_shed, 0);
  ExpectGaugesDrain(&server);
  server.Stop();
}

TEST(ServeRetryTest, SameSeedReplaysTheSameBackoffSchedule) {
  RetryPolicy policy;
  policy.seed = 12345;
  // Two clients pointed at a dead port: every connect fails, so the
  // whole schedule is backoff sleeps. Same seed => same total sleep.
  policy.connect_timeout_ms = 1;
  policy.max_attempts = 5;
  policy.base_delay_us = 100;
  policy.max_delay_us = 1000;
  RetryingClient a(1, policy);  // port 1: nothing listens there
  RetryingClient b(1, policy);
  EXPECT_FALSE(a.Ping().ok());
  EXPECT_FALSE(b.Ping().ok());
  EXPECT_EQ(a.stats().backoff_us, b.stats().backoff_us);
  EXPECT_EQ(a.stats().attempts, b.stats().attempts);
  EXPECT_EQ(a.stats().exhausted, 1);
  EXPECT_EQ(b.stats().exhausted, 1);

  policy.seed = 54321;
  RetryingClient c(1, policy);
  EXPECT_FALSE(c.Ping().ok());
  // Overwhelmingly likely to differ with another seed.
  EXPECT_NE(c.stats().backoff_us, a.stats().backoff_us);
}

TEST(ServeRetryTest, ServerReportedRequestErrorsAreNeverRetried) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  RetryPolicy policy;
  RetryingClient client(*port, policy);
  auto reply = client.ParseFile("/nonexistent/parparaw.csv");
  ASSERT_FALSE(reply.ok());
  // Exactly one wire attempt: the daemon said no, retrying cannot help.
  EXPECT_EQ(client.stats().attempts, 1);
  EXPECT_EQ(client.stats().busy_sheds, 0);
  EXPECT_EQ(client.stats().transport_retries, 0);
  server.Stop();
}

TEST(ServeRetryTest, NonIdempotentRequestsStopAtTransportErrors) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  RetryPolicy policy;
  policy.checksums = true;
  RetryingClient client(*port, policy);
  // Corrupt the daemon's response (AppendFrame hit 2): a transport
  // error after the request may have executed. idempotent=false must
  // surface it instead of re-executing.
  RequestOptions request;
  request.idempotent = false;
  robust::FailpointRegistry::Instance().Arm("serve.corrupt",
                                            robust::EveryNthTrigger(2));
  auto reply = client.Parse(SmallCsv(), request);
  robust::FailpointRegistry::Instance().DisarmAll();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(client.stats().attempts, 1);
  EXPECT_EQ(client.stats().transport_retries, 0);
  server.Stop();
}

// --- connect/IO timeouts against stalled peers ---

TEST(ServeTimeoutTest, ConnectTimesOutAgainstAFullAcceptQueue) {
  // Regression: Client::Connect used to block indefinitely when the
  // daemon's accept loop stalled. A listener that never accepts fills
  // its backlog; once full, further SYNs get no answer and a timeout-
  // less connect would hang in kernel retries.
  uint16_t port = 0;
  auto listener = ListenLoopback(0, /*backlog=*/1, &port);
  ASSERT_TRUE(listener.ok());
  Socket listen_sock(*listener);  // closes on scope exit; never accepts

  std::vector<Client> queued;
  bool timed_out = false;
  for (int i = 0; i < 32 && !timed_out; ++i) {
    auto client = Client::Connect(port, /*connect_timeout_ms=*/300);
    if (client.ok()) {
      queued.push_back(std::move(*client));  // keep the queue slot used
      continue;
    }
    EXPECT_EQ(client.status().code(), StatusCode::kDeadlineExceeded)
        << client.status().ToString();
    timed_out = true;
  }
  EXPECT_TRUE(timed_out) << "accept queue never filled";
}

TEST(ServeTimeoutTest, IoTimeoutFiresAgainstAStalledServer) {
  // A "server" that accepts and then never reads or writes: without an
  // I/O timeout the client's recv blocks forever.
  uint16_t port = 0;
  auto listener = ListenLoopback(0, /*backlog=*/4, &port);
  ASSERT_TRUE(listener.ok());
  const int listen_fd = *listener;
  std::atomic<bool> stop{false};
  Socket held;
  std::thread acceptor([&] {
    auto accepted = AcceptConnection(listen_fd);
    if (accepted.ok()) held = std::move(*accepted);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  auto client = Client::Connect(port, /*connect_timeout_ms=*/1000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  client->set_io_timeout_ms(100);
  const auto start = std::chrono::steady_clock::now();
  const Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_EQ(ping.code(), StatusCode::kDeadlineExceeded)
      << ping.ToString();
  EXPECT_TRUE(client->last_error_was_transport());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(30));

  stop.store(true, std::memory_order_release);
  acceptor.join();
  Socket(listen_fd).Close();
}

// --- kill-and-restart soak through the retrying client ---

TEST(ServeRetryTest, DaemonRestartIsInvisibleThroughRetries) {
  const std::string csv = GenerateYelpLike(71, 64 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  ServeOptions options;
  auto server = std::make_unique<Server>(options);
  auto port = server->Start();
  ASSERT_TRUE(port.ok());
  const uint16_t fixed_port = *port;

  RetryPolicy policy;
  policy.seed = 777;
  policy.max_attempts = 20;
  policy.base_delay_us = 5'000;
  policy.max_delay_us = 200'000;
  policy.budget_us = 60'000'000;
  policy.io_timeout_ms = 10'000;
  policy.checksums = true;
  RetryingClient client(fixed_port, policy);

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto reply = client.Parse(csv);
      ASSERT_TRUE(reply.ok())
          << "round " << round << " parse " << i << ": "
          << reply.status().ToString();
      ASSERT_FALSE(reply->busy);
      EXPECT_TRUE(reply->table.Equals(*expected));
    }
    if (round == 2) break;
    // Kill (gracefully drain) and restart on the same port; SO_REUSEADDR
    // makes the rebind immediate.
    EXPECT_TRUE(server->Drain(/*deadline_ms=*/10000));
    server = std::make_unique<Server>([&] {
      ServeOptions restarted;
      restarted.port = fixed_port;
      return restarted;
    }());
    auto reborn = server->Start();
    ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
    ASSERT_EQ(*reborn, fixed_port);
  }
  // The restarts cost reconnects, never failed logical requests.
  EXPECT_GE(client.stats().reconnects, 2);
  EXPECT_EQ(client.stats().exhausted, 0);
  EXPECT_EQ(client.stats().requests, 9);
  server->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace parparaw
