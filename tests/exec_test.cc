#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/parser.h"
#include "exec/bounded_queue.h"
#include "io/file.h"
#include "robust/failpoint.h"
#include "stream/streaming_parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

using exec::ExecOptions;
using exec::IngestResult;
using exec::PipelineExecutor;
using robust::ErrorPolicy;

// Input with quoted delimiters/newlines, empty fields, malformed ints and
// short records, sized to span many partitions at the test partition size.
std::string ExecInput(int rows = 400) {
  std::string csv;
  for (int i = 0; i < rows; ++i) {
    switch (i % 8) {
      case 3:
        csv += "\"q" + std::to_string(i) + ",x\"," + std::to_string(i) +
               ",\"line\nbreak\"\n";
        break;
      case 5:
        csv += "row" + std::to_string(i) + ",notanint,plain\n";
        break;
      case 6:
        csv += std::to_string(i) + ",,\n";
        break;
      case 7:
        csv += "short" + std::to_string(i) + "\n";
        break;
      default:
        csv += "f" + std::to_string(i) + "," + std::to_string(i * 7) +
               ",tail" + std::to_string(i) + "\n";
        break;
    }
  }
  return csv;
}

Schema ExecSchema() {
  Schema schema;
  schema.AddField(Field("s", DataType::String()));
  schema.AddField(Field("n", DataType::Int64()));
  schema.AddField(Field("t", DataType::String()));
  return schema;
}

ParseOptions BaseOptions(ErrorPolicy policy, simd::KernelKind kernel) {
  ParseOptions options;
  options.schema = ExecSchema();
  options.error_policy = policy;
  options.kernel = kernel;
  return options;
}

void ExpectQuarantineEqual(const robust::QuarantineTable& got,
                           const robust::QuarantineTable& want) {
  ASSERT_EQ(got.size(), want.size());
  for (int64_t i = 0; i < got.size(); ++i) {
    const robust::QuarantineEntry& g = got.entries()[i];
    const robust::QuarantineEntry& w = want.entries()[i];
    EXPECT_EQ(g.row, w.row) << "entry " << i;
    EXPECT_EQ(g.begin, w.begin) << "entry " << i;
    EXPECT_EQ(g.end, w.end) << "entry " << i;
    EXPECT_EQ(g.raw, w.raw) << "entry " << i;
    EXPECT_EQ(g.column, w.column) << "entry " << i;
    EXPECT_EQ(g.stage, w.stage) << "entry " << i;
  }
}

// The pipelined schedule must be invisible in the output: for every kernel
// and error policy, the table, rejected vector and quarantine are
// bit-identical to the serial partition-at-a-time parse over the same
// partition decomposition.
TEST(ExecTest, DifferentialAgainstSerialAcrossKernelsAndPolicies) {
  const std::string input = ExecInput();
  for (simd::KernelKind kernel :
       {simd::KernelKind::kScalar, simd::KernelKind::kAuto}) {
    for (ErrorPolicy policy :
         {ErrorPolicy::kNull, ErrorPolicy::kSkip, ErrorPolicy::kQuarantine}) {
      for (size_t partition_size :
           {size_t{257}, size_t{700}, size_t{4096}, size_t{1} << 20}) {
        StreamingOptions serial;
        serial.base = BaseOptions(policy, kernel);
        serial.partition_size = partition_size;
        auto want = StreamingParser::Parse(input, serial);
        ASSERT_TRUE(want.ok()) << want.status().ToString();

        PipelineExecutor executor;
        ExecOptions options;
        options.base = BaseOptions(policy, kernel);
        options.partition_size = partition_size;
        auto got = executor.IngestBuffer(input, options);
        ASSERT_TRUE(got.ok()) << got.status().ToString();

        ASSERT_TRUE(got->table.Equals(want->table))
            << "kernel=" << static_cast<int>(kernel)
            << " policy=" << static_cast<int>(policy)
            << " partition=" << partition_size;
        EXPECT_EQ(got->table.rejected, want->table.rejected);
        ExpectQuarantineEqual(got->quarantine, want->quarantine);
        EXPECT_EQ(got->stats.num_partitions, want->num_partitions);
      }
    }
  }
}

TEST(ExecTest, FileIngestMatchesBufferIngest) {
  const std::string input = ExecInput(800);
  const std::string path = "/tmp/parparaw_exec_test.csv";
  ASSERT_TRUE(WriteStringToFile(path, input).ok());

  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kQuarantine, simd::KernelKind::kAuto);
  options.partition_size = 1000;
  auto from_file = executor.IngestFile(path, options);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();

  PipelineExecutor buffer_executor;
  auto from_buffer = buffer_executor.IngestBuffer(input, options);
  ASSERT_TRUE(from_buffer.ok()) << from_buffer.status().ToString();

  ASSERT_TRUE(from_file->table.Equals(from_buffer->table));
  ExpectQuarantineEqual(from_file->quarantine, from_buffer->quarantine);
  EXPECT_EQ(from_file->stats.bytes, static_cast<int64_t>(input.size()));
  std::remove(path.c_str());
}

TEST(ExecTest, EmptyInputYieldsEmptyTable) {
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  auto result = executor.IngestBuffer("", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows, 0);
  EXPECT_EQ(result->stats.num_partitions, 0);
}

TEST(ExecTest, InvalidOptionsRejectedUpFront) {
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.base.skip_rows = -2;
  auto result = executor.IngestBuffer("a,b,c\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Backpressure: with a stalled convert stage, the admission controller
// must clamp how many partitions become resident — the reader cannot run
// ahead of the budget no matter how fast the disk is.
TEST(ExecTest, BackpressureClampsResidentPartitionsUnderBudget) {
  const std::string input = ExecInput(1200);
  std::atomic<int> convert_calls{0};
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 600;
  options.max_inflight_partitions = 2;
  options.stage_hook = [&](int stage, int64_t) {
    if (stage == 3) {
      // A slow consumer: every partition's conversion stalls, so upstream
      // stages fill their queues and must block on admission.
      ++convert_calls;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  auto result = executor.IngestBuffer(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.num_partitions, 4);
  EXPECT_EQ(result->stats.admission_limit, 2);
  EXPECT_LE(result->stats.max_inflight, 2);
  EXPECT_EQ(convert_calls.load(), result->stats.num_partitions);
}

// The auto admission limit derives from the memory budget: a budget that
// fits one clamped partition serialises the pipeline (degrade, not refuse).
TEST(ExecTest, MemoryBudgetDerivesAdmissionLimit) {
  const std::string input = ExecInput(600);
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.base.memory_budget = 64 * 1024;
  options.partition_size = 1 << 20;  // gets clamped to fit the budget
  auto result = executor.IngestBuffer(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->stats.admission_limit, 1);
  EXPECT_LE(result->stats.max_inflight, result->stats.admission_limit);
  // The clamp shrank partitions: the input must have been split.
  EXPECT_GT(result->stats.num_partitions, 1);

  // Differential: the degraded schedule still produces the serial answer.
  StreamingOptions serial;
  serial.base = options.base;
  serial.partition_size = options.partition_size;
  auto want = StreamingParser::Parse(input, serial);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(result->table.Equals(want->table));
}

TEST(ExecTest, CancellationMidPipelineReturnsCancelled) {
  const std::string input = ExecInput(1200);
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 600;
  std::atomic<bool> fired{false};
  options.stage_hook = [&](int stage, int64_t partition) {
    // Cancel from inside the pipeline once partition 2 reaches the scan
    // stage — upstream reads are already in flight at that point.
    if (stage == 1 && partition == 2 && !fired.exchange(true)) {
      executor.Cancel();
    }
  };
  auto result = executor.IngestBuffer(input, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(executor.cancelled());

  // A cancelled executor refuses new work immediately.
  auto again = executor.IngestBuffer("a,1,b\n", options);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kCancelled);
}

// Streaming mode: per-partition tables arrive in stream order, and a sink
// error cancels the rest of the ingest cleanly.
TEST(ExecTest, StreamSinkReceivesPartitionsInOrder) {
  const std::string input = ExecInput(400);
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 700;
  std::vector<Table> batches;
  auto result = executor.StreamBuffer(input, options, [&](Table&& batch) {
    batches.push_back(std::move(batch));
    return Status::OK();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows, 0);  // sink consumed everything
  ASSERT_EQ(static_cast<int>(batches.size()), result->stats.num_partitions);

  int64_t rows = 0;
  for (const Table& batch : batches) rows += batch.num_rows;
  auto monolithic =
      Parser::Parse(input, BaseOptions(ErrorPolicy::kNull,
                                       simd::KernelKind::kScalar));
  ASSERT_TRUE(monolithic.ok());
  EXPECT_EQ(rows, monolithic->table.num_rows);
}

TEST(ExecTest, StreamSinkErrorCancelsIngest) {
  const std::string input = ExecInput(400);
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 700;
  int seen = 0;
  auto result = executor.StreamBuffer(input, options, [&](Table&&) {
    return ++seen >= 2 ? Status::IoError("sink full") : Status::OK();
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(seen, 2);
}

// Concurrent multi-file ingestion shares one admission controller, so the
// budget holds across files; results come back in input order.
TEST(ExecTest, IngestFilesConcurrentlyMatchesPerFileResults) {
  std::vector<std::string> paths;
  std::vector<std::string> inputs;
  for (int f = 0; f < 3; ++f) {
    inputs.push_back(ExecInput(300 + 50 * f));
    paths.push_back("/tmp/parparaw_exec_multi_" + std::to_string(f) +
                    ".csv");
    ASSERT_TRUE(WriteStringToFile(paths[f], inputs[f]).ok());
  }
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 900;
  options.max_inflight_partitions = 3;
  auto results = executor.IngestFiles(paths, options, /*max_concurrent=*/3);
  ASSERT_EQ(results.size(), paths.size());
  for (size_t f = 0; f < paths.size(); ++f) {
    ASSERT_TRUE(results[f].ok()) << results[f].status().ToString();
    // Global admission: no single file may have exceeded the shared limit.
    EXPECT_LE(results[f]->stats.max_inflight, 3);
    PipelineExecutor solo;
    auto want = solo.IngestBuffer(inputs[f], options);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(results[f]->table.Equals(want->table)) << "file " << f;
    std::remove(paths[f].c_str());
  }
}

// Queue hand-off failpoints surface as clean errors with the queue's name
// in the context, never as hangs or corrupt output.
TEST(ExecTest, QueueFailpointsFailCleanly) {
  const std::string input = ExecInput(400);
  for (const char* site :
       {"exec.queue.scan.push", "exec.queue.scan.pop",
        "exec.queue.sort.push", "exec.queue.sort.pop",
        "exec.queue.convert.push", "exec.queue.convert.pop", "exec.read"}) {
    robust::FailpointRegistry::Instance().Arm(site,
                                              robust::CountTrigger(2));
    PipelineExecutor executor;
    ExecOptions options;
    options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
    options.partition_size = 700;
    auto result = executor.IngestBuffer(input, options);
    robust::FailpointRegistry::Instance().DisarmAll();
    ASSERT_FALSE(result.ok()) << site;
    EXPECT_EQ(result.status().code(), StatusCode::kIoError) << site;
  }
}

// Regression: Push() used to accept items after Close(). A consumer that
// had already observed closed+empty has exited, so the item would be
// silently dropped — a lost partition. It must be a typed internal error,
// and a producer blocked on a full closed queue must wake into it rather
// than hang.
TEST(ExecTest, BoundedQueuePushAfterCloseIsRejected) {
  exec::BoundedQueue<int> queue("exec.test.queue", 2);
  ASSERT_TRUE(queue.Push(1).ok());
  queue.Close();
  const Status rejected = queue.Push(2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInternal);
  EXPECT_NE(rejected.ToString().find("push after close"), std::string::npos)
      << rejected.ToString();
  // The queued item still drains normally; then end-of-stream.
  auto item = queue.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ExecTest, BoundedQueueCloseWakesBlockedProducer) {
  exec::BoundedQueue<int> queue("exec.test.queue", 1);
  ASSERT_TRUE(queue.Push(1).ok());  // queue now full
  std::atomic<bool> returned{false};
  Status blocked_push;
  std::thread producer([&] {
    blocked_push = queue.Push(2);  // blocks on the full queue
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  queue.Close();
  producer.join();
  ASSERT_TRUE(returned.load());
  EXPECT_EQ(blocked_push.code(), StatusCode::kInternal);
}

// A record larger than one partition accumulates through the carry-over
// without stalling or splitting mid-record.
TEST(ExecTest, RecordLargerThanPartition) {
  std::string input = "a,1,b\n";
  input += "\"" + std::string(5000, 'x') + "\",2,c\n";
  input += "d,3,e\n";
  PipelineExecutor executor;
  ExecOptions options;
  options.base = BaseOptions(ErrorPolicy::kNull, simd::KernelKind::kScalar);
  options.partition_size = 256;
  auto result = executor.IngestBuffer(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto want = Parser::Parse(input, options.base);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(result->table.Equals(want->table));
}

}  // namespace
}  // namespace parparaw
