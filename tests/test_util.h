#ifndef PARPARAW_TESTS_TEST_UTIL_H_
#define PARPARAW_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "core/bitmap_step.h"
#include "core/context_step.h"
#include "core/convert_step.h"
#include "core/offset_step.h"
#include "core/partition_step.h"
#include "core/tag_step.h"
#include "dfa/formats.h"
#include "util/bit_util.h"

namespace parparaw {

/// Drives the pipeline steps one by one over `input`, so tests can inspect
/// intermediate state. The fixture owns the input and options; `state`
/// holds borrowed pointers into them.
struct StepHarness {
  std::string input;
  ParseOptions options;
  PipelineState state;
  StepTimings timings;
  WorkCounters work;

  static std::unique_ptr<StepHarness> Make(std::string input_in,
                                           ParseOptions options_in) {
    auto h = std::make_unique<StepHarness>();
    h->input = std::move(input_in);
    h->options = std::move(options_in);
    if (h->options.format.dfa.num_states() == 0) {
      auto format = Rfc4180Format();
      if (!format.ok()) return nullptr;
      h->options.format = *std::move(format);
    }
    if (h->options.pool == nullptr) h->options.pool = ThreadPool::Default();
    // Step-level tests bypass StagedParse's auto-sentinel resolution, so
    // resolve chunk/tagging the same way it does.
    if (h->options.chunk_size == 0) h->options.chunk_size = 31;
    h->options.tagging_mode = EffectiveTaggingMode(h->options);
    h->state.data = reinterpret_cast<const uint8_t*>(h->input.data());
    h->state.size = h->input.size();
    h->state.options = &h->options;
    h->state.pool = h->options.pool;
    h->state.num_chunks = static_cast<int64_t>(
        bit_util::CeilDiv(h->input.size(), h->options.chunk_size));
    return h;
  }

  Status RunContext() { return ContextStep::Run(&state, &timings); }
  Status RunThroughBitmaps() {
    PARPARAW_RETURN_NOT_OK(RunContext());
    return BitmapStep::Run(&state, &timings);
  }
  Status RunThroughOffsets() {
    PARPARAW_RETURN_NOT_OK(RunThroughBitmaps());
    return OffsetStep::Run(&state, &timings);
  }
  Status RunThroughTagging() {
    PARPARAW_RETURN_NOT_OK(RunThroughOffsets());
    return TagStep::Run(&state, &timings);
  }
  Status RunThroughPartition() {
    PARPARAW_RETURN_NOT_OK(RunThroughTagging());
    return PartitionStep::Run(&state, &timings, &work);
  }
};

}  // namespace parparaw

#endif  // PARPARAW_TESTS_TEST_UTIL_H_
