#include <gtest/gtest.h>

#include <cstdio>

#include "columnar/dictionary.h"
#include "columnar/statistics.h"
#include "core/parser.h"
#include "dfa/sniffer.h"
#include "io/csv_writer.h"
#include "io/file.h"

namespace parparaw {
namespace {

TEST(TimingsTest, AccumulationAndToString) {
  StepTimings a;
  a.parse_ms = 1;
  a.scan_ms = 2;
  a.tag_ms = 3;
  a.partition_ms = 4;
  a.convert_ms = 5;
  StepTimings b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.TotalMs(), 30);
  EXPECT_NE(a.ToString().find("parse=1.00ms"), std::string::npos);
  EXPECT_NE(a.ToString().find("total=15.00ms"), std::string::npos);
}

TEST(TimingsTest, WorkCounterAccumulation) {
  WorkCounters a;
  a.input_bytes = 10;
  a.dfa_transitions = 60;
  a.sort_passes = 1;
  WorkCounters b;
  b.input_bytes = 5;
  b.sort_passes = 2;
  a += b;
  EXPECT_EQ(a.input_bytes, 15);
  EXPECT_EQ(a.dfa_transitions, 60);
  EXPECT_EQ(a.sort_passes, 3);
}

TEST(CsvWriterTest, BoolAndDecimalRoundTrip) {
  ParseOptions options;
  options.schema.AddField(Field("flag", DataType::Bool()));
  options.schema.AddField(Field("price", DataType::Decimal64(2)));
  auto first = Parser::Parse("true,12.50\nfalse,0.05\n,\n", options);
  ASSERT_TRUE(first.ok());
  auto rewritten = WriteCsv(first->table);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(*rewritten, "true,12.50\nfalse,0.05\n,\n");
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->table.Equals(first->table));
}

TEST(DictionaryTest, StatisticsAgreeAcrossEncodeDecode) {
  Column column(DataType::String());
  for (int i = 0; i < 1000; ++i) {
    column.AppendString(i % 7 == 0 ? "rare" : "common");
  }
  auto stats_before = ComputeColumnStatistics(column);
  ASSERT_TRUE(stats_before.ok());
  auto encoded = DictionaryEncode(column);
  ASSERT_TRUE(encoded.ok());
  const Column decoded = encoded->Decode();
  auto stats_after = ComputeColumnStatistics(decoded);
  ASSERT_TRUE(stats_after.ok());
  EXPECT_EQ(stats_before->distinct_estimate, stats_after->distinct_estimate);
  EXPECT_EQ(*stats_before->string_min, *stats_after->string_min);
  EXPECT_EQ(stats_before->string_bytes, stats_after->string_bytes);
  EXPECT_EQ(encoded->cardinality(), 2);
}

TEST(SnifferTest, SpaceDelimitedLog) {
  // Space-delimited request lines: the sniffer should pick ' ' and a
  // consistent column count.
  const std::string sample =
      "GET /a 200 12\nPOST /b 404 7\nGET /c 200 3\nGET /d 200 9\n";
  auto result = SniffDsvFormat(sample);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.field_delimiter, ' ');
  EXPECT_EQ(result->num_columns, 4u);
}

TEST(DfaBuilderTest, InvalidStartStateRejected) {
  DfaBuilder b;
  b.AddState("only", true);
  b.SetDefaultTransition(0, 0, 0);
  b.SetStartState(7);
  EXPECT_FALSE(b.Build().ok());
  b.SetStartState(-1);
  EXPECT_FALSE(b.Build().ok());
  b.SetStartState(0);
  EXPECT_TRUE(b.Build().ok());
}

TEST(FileTest, ChunkReaderReopen) {
  const std::string path_a = "/tmp/parparaw_reopen_a.txt";
  const std::string path_b = "/tmp/parparaw_reopen_b.txt";
  ASSERT_TRUE(WriteStringToFile(path_a, "aaaa").ok());
  ASSERT_TRUE(WriteStringToFile(path_b, "bb").ok());
  FileChunkReader reader;
  ASSERT_TRUE(reader.Open(path_a).ok());
  EXPECT_EQ(reader.file_size(), 4);
  ASSERT_TRUE(reader.Open(path_b).ok());  // reopen switches files cleanly
  EXPECT_EQ(reader.file_size(), 2);
  std::string chunk;
  bool eof = false;
  ASSERT_TRUE(reader.ReadNext(16, &chunk, &eof).ok());
  EXPECT_EQ(chunk, "bb");
  EXPECT_TRUE(eof);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ParseOutputTest, TimingsCoverEveryStepOnRealParse) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::Int64()));
  options.schema.AddField(Field("b", DataType::String()));
  std::string csv;
  for (int i = 0; i < 5000; ++i) {
    csv += std::to_string(i) + ",value" + std::to_string(i) + "\n";
  }
  auto result = Parser::Parse(csv, options);
  ASSERT_TRUE(result.ok());
  // Every bucket saw work (wall clocks can round to 0.0 only for trivial
  // inputs; 5000 records is enough on any machine for >= 0).
  EXPECT_GE(result->timings.parse_ms, 0);
  EXPECT_GT(result->timings.TotalMs(), 0);
  EXPECT_EQ(result->work.input_bytes, static_cast<int64_t>(csv.size()));
  EXPECT_GT(result->work.tag_bytes_written, 0);
  EXPECT_GT(result->work.output_bytes, 0);
}

}  // namespace
}  // namespace parparaw
