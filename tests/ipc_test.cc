#include <gtest/gtest.h>

#include "columnar/ipc.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

Table MakeTable() {
  Table table;
  table.schema.AddField(Field("id", DataType::Int64(), /*nullable=*/false));
  table.schema.AddField(Field("name", DataType::String()));
  table.schema.AddField(Field("price", DataType::Decimal64(2)));
  Column id(DataType::Int64());
  id.AppendValue<int64_t>(10);
  id.AppendValue<int64_t>(-20);
  Column name(DataType::String());
  name.AppendString("ten");
  name.AppendNull();
  Column price(DataType::Decimal64(2));
  price.AppendValue<int64_t>(1999);
  price.AppendNull();
  table.columns = {std::move(id), std::move(name), std::move(price)};
  table.num_rows = 2;
  table.rejected = {0, 1};
  return table;
}

TEST(IpcTest, RoundTripPreservesEverything) {
  const Table original = MakeTable();
  auto bytes = SerializeTable(original);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Equals(original));
  EXPECT_EQ(restored->rejected, original.rejected);
  EXPECT_EQ(restored->schema.field(0).nullable, false);
  EXPECT_EQ(restored->schema.field(2).type.scale, 2);
}

TEST(IpcTest, EmptyTable) {
  Table table;
  table.schema.AddField(Field("a", DataType::String()));
  Column a(DataType::String());
  a.Allocate(0);
  table.columns.push_back(std::move(a));
  table.num_rows = 0;
  auto bytes = SerializeTable(table);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_rows, 0);
  EXPECT_EQ(restored->num_columns(), 1);
}

TEST(IpcTest, ParsedTableRoundTrips) {
  ParseOptions options;
  options.schema = TaxiSchema();
  const std::string csv = GenerateTaxiLike(17, 64 * 1024);
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());
  auto bytes = SerializeTable(parsed->table);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Equals(parsed->table));
}

TEST(IpcTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTable("").ok());
  EXPECT_FALSE(DeserializeTable("NOPE").ok());
  EXPECT_FALSE(DeserializeTable("PPRWxxxxxxxxxxxxxxx").ok());
}

TEST(IpcTest, RejectsTruncation) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  // Every strict prefix must fail cleanly, never crash.
  for (size_t len = 0; len < bytes->size(); len += 3) {
    auto result = DeserializeTable(std::string_view(*bytes).substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix " << len;
  }
}

TEST(IpcTest, RejectsTrailingBytes) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  *bytes += "extra";
  EXPECT_FALSE(DeserializeTable(*bytes).ok());
}

TEST(IpcTest, RejectsCorruptOffsets) {
  Table table;
  table.schema.AddField(Field("s", DataType::String()));
  Column s(DataType::String());
  s.AppendString("ab");
  s.AppendString("cd");
  table.columns.push_back(std::move(s));
  table.num_rows = 2;
  table.rejected.assign(2, 0);
  auto bytes = SerializeTable(table);
  ASSERT_TRUE(bytes.ok());
  // Flip a byte inside the offsets region (the last 4+2+8*3+... bytes are
  // the string data "abcd"; offsets precede it). Corrupt a middle offset.
  const size_t pos = bytes->size() - 4 /*"abcd"*/ - 2 * 8;
  (*bytes)[pos] = static_cast<char>(0xEE);
  auto result = DeserializeTable(*bytes);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace parparaw
