#include <gtest/gtest.h>

#include "columnar/ipc.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

Table MakeTable() {
  Table table;
  table.schema.AddField(Field("id", DataType::Int64(), /*nullable=*/false));
  table.schema.AddField(Field("name", DataType::String()));
  table.schema.AddField(Field("price", DataType::Decimal64(2)));
  Column id(DataType::Int64());
  id.AppendValue<int64_t>(10);
  id.AppendValue<int64_t>(-20);
  Column name(DataType::String());
  name.AppendString("ten");
  name.AppendNull();
  Column price(DataType::Decimal64(2));
  price.AppendValue<int64_t>(1999);
  price.AppendNull();
  table.columns = {std::move(id), std::move(name), std::move(price)};
  table.num_rows = 2;
  table.rejected = {0, 1};
  return table;
}

TEST(IpcTest, RoundTripPreservesEverything) {
  const Table original = MakeTable();
  auto bytes = SerializeTable(original);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Equals(original));
  EXPECT_EQ(restored->rejected, original.rejected);
  EXPECT_EQ(restored->schema.field(0).nullable, false);
  EXPECT_EQ(restored->schema.field(2).type.scale, 2);
}

TEST(IpcTest, EmptyTable) {
  Table table;
  table.schema.AddField(Field("a", DataType::String()));
  Column a(DataType::String());
  a.Allocate(0);
  table.columns.push_back(std::move(a));
  table.num_rows = 0;
  auto bytes = SerializeTable(table);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_rows, 0);
  EXPECT_EQ(restored->num_columns(), 1);
}

TEST(IpcTest, ParsedTableRoundTrips) {
  ParseOptions options;
  options.schema = TaxiSchema();
  const std::string csv = GenerateTaxiLike(17, 64 * 1024);
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());
  auto bytes = SerializeTable(parsed->table);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Equals(parsed->table));
}

TEST(IpcTest, ConcatenatedTableRoundTrips) {
  // Column::Concat grows validity bitmaps with amortised doubling, so a
  // multi-partition table's buffers are larger than its row count needs.
  // Serialization must still emit exactly what the reader expects —
  // regression for the daemon serving multi-partition parses.
  const Table part = MakeTable();
  const Table merged = ConcatTables({part, part, part});
  ASSERT_EQ(merged.num_rows, 6);
  auto bytes = SerializeTable(merged);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto restored = DeserializeTable(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Equals(merged));
  EXPECT_EQ(restored->rejected, merged.rejected);
}

TEST(IpcTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTable("").ok());
  EXPECT_FALSE(DeserializeTable("NOPE").ok());
  EXPECT_FALSE(DeserializeTable("PPRWxxxxxxxxxxxxxxx").ok());
}

TEST(IpcTest, RejectsTruncation) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  // Every strict prefix must fail cleanly, never crash.
  for (size_t len = 0; len < bytes->size(); len += 3) {
    auto result = DeserializeTable(std::string_view(*bytes).substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix " << len;
  }
}

TEST(IpcTest, RejectsTrailingBytes) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  *bytes += "extra";
  EXPECT_FALSE(DeserializeTable(*bytes).ok());
}

// Corruption sweep: deserialization must fail cleanly (or, for payload
// bytes that don't affect framing, succeed) for EVERY single-bit flip —
// never crash, over-read, or hang. Run under ASan/UBSan by
// `scripts/check.sh faults`.
TEST(IpcTest, BitFlipSweepNeverCrashes) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  for (size_t byte = 0; byte < bytes->size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = *bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto result = DeserializeTable(corrupt);  // must not crash
      if (result.ok()) {
        // A flip inside value data can legitimately deserialize; it must
        // still describe a structurally sound table.
        EXPECT_EQ(result->num_rows, 2);
        EXPECT_EQ(result->num_columns(), 3);
      }
    }
  }
}

TEST(IpcTest, FramingFlipsAreCleanErrors) {
  auto bytes = SerializeTable(MakeTable());
  ASSERT_TRUE(bytes.ok());
  // The first 16 bytes are pure framing: magic, version, column count, row
  // count. Any flip there must produce an error Status, never success.
  for (size_t byte = 0; byte < 16; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = *bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto result = DeserializeTable(corrupt);
      EXPECT_FALSE(result.ok()) << "byte " << byte << " bit " << bit;
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

robust::QuarantineTable MakeQuarantine() {
  robust::QuarantineTable q;
  robust::QuarantineEntry a;
  a.row = 1;
  a.record_index = 1;
  a.begin = 12;
  a.end = 24;
  a.raw = "oops,20,beta";
  a.column = 0;
  a.code = StatusCode::kParseError;
  a.stage = "convert";
  a.message = "row 1, column 0: value is not a valid int64";
  q.Add(a);
  robust::QuarantineEntry b;
  b.row = 4;
  b.record_index = 5;
  b.begin = 50;
  b.end = 54;
  b.raw = "x,,y";
  b.column = -1;
  b.code = StatusCode::kParseError;
  b.stage = "tag";
  b.message = "wrong number of columns";
  q.Add(b);
  return q;
}

TEST(IpcTest, QuarantineRoundTrip) {
  const robust::QuarantineTable original = MakeQuarantine();
  auto bytes = SerializeQuarantine(original);
  ASSERT_TRUE(bytes.ok());
  auto restored = DeserializeQuarantine(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), original.size());
  for (int64_t i = 0; i < original.size(); ++i) {
    const auto& want = original.entries()[static_cast<size_t>(i)];
    const auto& got = restored->entries()[static_cast<size_t>(i)];
    EXPECT_EQ(got.row, want.row);
    EXPECT_EQ(got.record_index, want.record_index);
    EXPECT_EQ(got.begin, want.begin);
    EXPECT_EQ(got.end, want.end);
    EXPECT_EQ(got.raw, want.raw);
    EXPECT_EQ(got.column, want.column);
    EXPECT_EQ(got.code, want.code);
    EXPECT_EQ(got.stage, want.stage);
    EXPECT_EQ(got.message, want.message);
  }
}

TEST(IpcTest, QuarantineRejectsGarbageAndTruncation) {
  EXPECT_FALSE(DeserializeQuarantine("").ok());
  EXPECT_FALSE(DeserializeQuarantine("PPRW").ok());  // table magic, not PPQR
  auto bytes = SerializeQuarantine(MakeQuarantine());
  ASSERT_TRUE(bytes.ok());
  for (size_t len = 0; len < bytes->size(); ++len) {
    auto result =
        DeserializeQuarantine(std::string_view(*bytes).substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix " << len;
  }
  std::string trailing = *bytes + "x";
  EXPECT_FALSE(DeserializeQuarantine(trailing).ok());
}

TEST(IpcTest, QuarantineBitFlipSweepNeverCrashes) {
  auto bytes = SerializeQuarantine(MakeQuarantine());
  ASSERT_TRUE(bytes.ok());
  for (size_t byte = 0; byte < bytes->size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = *bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto result = DeserializeQuarantine(corrupt);  // must not crash
      if (result.ok()) {
        EXPECT_EQ(result->size(), 2);
      }
    }
  }
}

TEST(IpcTest, RejectsCorruptOffsets) {
  Table table;
  table.schema.AddField(Field("s", DataType::String()));
  Column s(DataType::String());
  s.AppendString("ab");
  s.AppendString("cd");
  table.columns.push_back(std::move(s));
  table.num_rows = 2;
  table.rejected.assign(2, 0);
  auto bytes = SerializeTable(table);
  ASSERT_TRUE(bytes.ok());
  // Flip a byte inside the offsets region (the last 4+2+8*3+... bytes are
  // the string data "abcd"; offsets precede it). Corrupt a middle offset.
  const size_t pos = bytes->size() - 4 /*"abcd"*/ - 2 * 8;
  (*bytes)[pos] = static_cast<char>(0xEE);
  auto result = DeserializeTable(*bytes);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace parparaw
