#include <gtest/gtest.h>

#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "json/json_lines.h"

namespace parparaw {
namespace {

TEST(JsonDfaTest, RecordBoundariesIgnoreQuotedBraces) {
  auto format = JsonLinesFormat();
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  // The string contains \" and a raw newline — neither may split records.
  const std::string input =
      "{\"a\":1}\n"
      "{\"t\":\"brace } quote \\\" and\nnewline\"}\n"
      "{\"b\":2}\n";
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 3);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "{\"a\":1}");
  EXPECT_EQ(result->table.columns[0].StringValue(1),
            "{\"t\":\"brace } quote \\\" and\nnewline\"}");
}

TEST(JsonDfaTest, EmptyLinesSkippedAndTrailingRecordKept) {
  auto format = JsonLinesFormat();
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  auto result = Parser::Parse("\n\n{\"a\":1}\n\n{\"b\":2}", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].StringValue(1), "{\"b\":2}");
}

TEST(JsonDfaTest, ChunkSizeInvariance) {
  auto format = JsonLinesFormat();
  ASSERT_TRUE(format.ok());
  const std::string input =
      "{\"k\":\"long \\\\ string with \\\" inside\"}\n{\"k\":null}\n";
  ParseOptions reference_options;
  reference_options.format = *format;
  auto reference = SequentialParser::Parse(input, reference_options);
  ASSERT_TRUE(reference.ok());
  for (size_t chunk : {1u, 2u, 3u, 5u, 17u}) {
    ParseOptions options;
    options.format = *format;
    options.chunk_size = chunk;
    auto result = Parser::Parse(input, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->table.Equals(reference->table)) << chunk;
  }
}

TEST(ExtractJsonFieldTest, ScalarsAndStrings) {
  const std::string obj =
      "{\"i\": 42, \"f\": -1.5, \"b\": true, \"n\": null, "
      "\"s\": \"he\\\"llo\\n\", \"u\": \"\\u00e9\\uD83D\\uDE00\"}";
  auto i = ExtractJsonField(obj, "i");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(**i, "42");
  auto f = ExtractJsonField(obj, "f");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(**f, "-1.5");
  auto b = ExtractJsonField(obj, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(**b, "true");
  auto n = ExtractJsonField(obj, "n");
  ASSERT_TRUE(n.ok());
  EXPECT_FALSE(n->has_value());  // JSON null
  auto s = ExtractJsonField(obj, "s");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(**s, "he\"llo\n");
  auto u = ExtractJsonField(obj, "u");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(**u, "\xC3\xA9\xF0\x9F\x98\x80");  // é😀
}

TEST(ExtractJsonFieldTest, MissingKeyAndNesting) {
  const std::string obj =
      "{\"skip\": {\"inner\": [1, \"}]\", 2]}, \"hit\": 7}";
  auto missing = ExtractJsonField(obj, "nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  auto hit = ExtractJsonField(obj, "hit");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(**hit, "7");
  // Requesting the nested value itself is NotImplemented, not a crash.
  auto nested = ExtractJsonField(obj, "skip");
  EXPECT_FALSE(nested.ok());
}

TEST(ExtractJsonFieldTest, Malformed) {
  EXPECT_FALSE(ExtractJsonField("not json", "k").ok());
  EXPECT_FALSE(ExtractJsonField("{\"k\" 1}", "k").ok());
  EXPECT_FALSE(ExtractJsonField("{\"k\": \"unterminated", "k").ok());
  EXPECT_FALSE(ExtractJsonField("{\"k\": 1", "k").ok());
  auto empty = ExtractJsonField("{}", "k");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST(ParseJsonLinesTest, TypedColumns) {
  const std::string input =
      "{\"user\": \"alice\", \"age\": 31, \"score\": 9.5, \"ok\": true, "
      "\"when\": \"2021-03-04 05:06:07\"}\n"
      "{\"user\": \"bob\", \"age\": null, \"extra\": [1,2]}\n"
      "{\"age\": 7}\n";
  std::vector<JsonField> fields = {
      {"user", DataType::String()},
      {"age", DataType::Int64()},
      {"score", DataType::Float64()},
      {"ok", DataType::Bool()},
      {"when", DataType::TimestampMicros()},
  };
  auto result = ParseJsonLines(input, fields);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = result->table;
  ASSERT_EQ(table.num_rows, 3);
  ASSERT_EQ(table.num_columns(), 5);
  EXPECT_EQ(table.columns[0].StringValue(0), "alice");
  EXPECT_EQ(table.columns[1].Value<int64_t>(0), 31);
  EXPECT_DOUBLE_EQ(table.columns[2].Value<double>(0), 9.5);
  EXPECT_EQ(table.columns[3].Value<uint8_t>(0), 1);
  EXPECT_FALSE(table.columns[4].IsNull(0));
  // Row 1: age null, other requested fields absent.
  EXPECT_EQ(table.columns[0].StringValue(1), "bob");
  EXPECT_TRUE(table.columns[1].IsNull(1));
  EXPECT_TRUE(table.columns[2].IsNull(1));
  // Row 2: user missing entirely.
  EXPECT_TRUE(table.columns[0].IsNull(2));
  EXPECT_EQ(table.columns[1].Value<int64_t>(2), 7);
}

TEST(ParseJsonLinesTest, MalformedRecordsAreRejected) {
  const std::string input =
      "{\"a\": 1}\nTHIS IS NOT JSON\n{\"a\": 3}\n";
  auto result = ParseJsonLines(input, {{"a", DataType::Int64()}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 3);
  EXPECT_EQ(result->table.rejected[0], 0);
  EXPECT_EQ(result->table.rejected[1], 1);
  EXPECT_TRUE(result->table.columns[0].IsNull(1));
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(2), 3);
}

TEST(ParseJsonLinesTest, EmptyInput) {
  auto result = ParseJsonLines("", {{"a", DataType::Int64()}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows, 0);
  EXPECT_EQ(result->table.num_columns(), 1);
}

}  // namespace
}  // namespace parparaw
