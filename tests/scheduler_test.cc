#include "parallel/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/scan.h"
#include "parallel/thread_pool.h"

namespace parparaw {
namespace {

// --- forward-progress regressions -----------------------------------------
//
// The static stage scheduler had two ways to stop making progress:
//
//  1. ParallelFor blocked the calling thread on a condition variable
//     without ever executing queued slices itself, so a ParallelFor
//     nested inside a pool task deadlocked once every worker was the
//     caller of an inner ParallelFor (two workers were enough).
//  2. ScanDecoupledLookback assigned tiles to tasks statically, so a
//     tile's look-back could spin on a predecessor that was still queued
//     behind unrelated work — with no runnable owner, a livelock (two
//     concurrent scans on a busy shared pool were enough).
//
// The work-stealing scheduler fixes both with caller-runs (a waiting
// thread executes tasks instead of parking) and dynamic tile claiming
// (spins only ever wait on tiles a *running* task owns). These tests are
// the regressions; scripts/check.sh scaling runs them under TSan.

TEST(SchedulerForwardProgressTest, NestedParallelForOnOneThreadPool) {
  // One worker, and it is occupied: the outer task runs on the worker and
  // the inner ParallelFor can only finish because the worker executes the
  // inner morsels itself (caller-runs) instead of parking.
  ThreadPool pool(1);
  std::atomic<int64_t> sum{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    ParallelForEach(&pool, 0, 1000,
                    [&](int64_t i) { sum.fetch_add(i); });
    done.store(true);
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(sum.load(), 499500);
}

TEST(SchedulerForwardProgressTest, NestedParallelForOnTwoThreadPool) {
  // The provable deadlock of the old scheduler: both workers run an outer
  // slice whose body is an inner ParallelFor; with a parked caller the
  // inner slices sit in the queue behind the blocked workers forever.
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  const Status st = ParallelForEach(&pool, 0, 8, [&](int64_t) {
    ParallelForEach(&pool, 0, 500, [&](int64_t i) { sum.fetch_add(i); });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sum.load(), 8 * (499 * 500 / 2));
}

TEST(SchedulerForwardProgressTest, DeeplyNestedParallelRegions) {
  ThreadPool pool(2);
  std::atomic<int64_t> leaves{0};
  ParallelForEach(&pool, 0, 3, [&](int64_t) {
    ParallelForEach(&pool, 0, 3, [&](int64_t) {
      ParallelForEach(&pool, 0, 3, [&](int64_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 27);
}

TEST(SchedulerForwardProgressTest, ConcurrentScansOnOccupiedSharedPool) {
  // Livelock regression: both workers of the shared pool are pinned by
  // long-running tasks (standing in for other requests' work), then two
  // decoupled-lookback scans run concurrently from external threads. The
  // scans must complete through caller-runs + dynamic tile claiming alone
  // — under the static assignment their look-backs spun on queued tiles
  // no runnable task owned.
  ThreadPool pool(2);
  std::atomic<int> blockers_running{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      blockers_running.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (blockers_running.load() < 2) std::this_thread::yield();

  const int64_t n = 200000;  // >> kMinTile so the scan actually tiles
  std::vector<int64_t> in(n, 1);
  const auto run_scan = [&] {
    std::vector<int64_t> out(n);
    ScanDecoupledLookback(&pool, in.data(), out.data(), n,
                          [](int64_t a, int64_t b) { return a + b; },
                          int64_t{0});
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], i + 1) << "at " << i;
    }
  };
  std::thread first(run_scan);
  std::thread second(run_scan);
  first.join();
  second.join();
  release.store(true, std::memory_order_release);
  pool.WaitIdle();
}

// --- task-group scoping ----------------------------------------------------

TEST(TaskGroupTest, WaitCoversTasksChainedFromInsideTasks) {
  // The morsel executor chains scan -> sort -> convert by calling
  // group.Run from within a running group task; Wait must cover the whole
  // chain, not just the tasks submitted before it was called.
  ThreadPool pool(2);
  std::atomic<int> depth_reached{0};
  TaskGroup group(pool.scheduler());
  std::function<void(int)> chain = [&](int depth) {
    depth_reached.fetch_add(1);
    if (depth < 100) group.Run([&chain, depth] { chain(depth + 1); });
  };
  group.Run([&chain] { chain(1); });
  group.Wait();
  EXPECT_EQ(depth_reached.load(), 100);
}

TEST(TaskGroupTest, GroupsAreIndependent) {
  // Waiting on one group must not wait for (or be woken spuriously by)
  // another group's tasks — this is what lets concurrent parparawd
  // requests share one pool without convoying on each other.
  ThreadPool pool(2);
  std::atomic<bool> slow_started{false};
  std::atomic<bool> slow_done{false};
  std::atomic<bool> release_slow{false};
  TaskGroup slow(pool.scheduler());
  slow.Run([&] {
    slow_started.store(true);
    while (!release_slow.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    slow_done.store(true);
  });
  // Make sure a worker (not fast.Wait's caller-runs) owns the spinning
  // task before the fast group floods the queues.
  while (!slow_started.load()) std::this_thread::yield();
  TaskGroup fast(pool.scheduler());
  std::atomic<int> fast_count{0};
  for (int i = 0; i < 64; ++i) {
    fast.Run([&] { fast_count.fetch_add(1); });
  }
  fast.Wait();  // must return while `slow` still spins
  EXPECT_EQ(fast_count.load(), 64);
  EXPECT_FALSE(slow_done.load());
  release_slow.store(true, std::memory_order_release);
  slow.Wait();
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroupTest, EmptyGroupWaitReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool.scheduler());
  group.Wait();
  group.Wait();  // idempotent
}

// --- work-stealing behaviour ----------------------------------------------

TEST(SchedulerTest, SubmitFromOutsideAndInsideWorkers) {
  Scheduler scheduler(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    // External submits land in the injection queue; each task then
    // submits once more from a worker thread (local shard, LIFO side).
    scheduler.Submit([&count, &scheduler] {
      count.fetch_add(1);
      scheduler.Submit([&count] { count.fetch_add(1); });
    });
  }
  scheduler.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(SchedulerTest, UnevenMorselsRebalanceAcrossWorkers) {
  // One morsel is 100x the others; stealing must let the other workers
  // drain the small ones meanwhile. (Correctness here, speedup in
  // bench_scalability.)
  ThreadPool pool(4);
  std::atomic<int64_t> work_done{0};
  ParallelForEach(&pool, 0, 64, [&](int64_t i) {
    volatile int64_t sink = 0;
    const int64_t reps = (i == 0) ? 2000000 : 20000;
    for (int64_t r = 0; r < reps; ++r) sink = sink + r;
    work_done.fetch_add(1);
  });
  EXPECT_EQ(work_done.load(), 64);
}

TEST(SchedulerStressTest, ManyConcurrentGroupsOnSharedPool) {
  // Executor-shaped stress: several external threads (concurrent ingests)
  // each run nested parallel regions against one pool. Every region must
  // complete with exact coverage — no lost or double-run morsels under
  // heavy stealing. TSan-clean by construction (scripts/check.sh scaling).
  ThreadPool pool(4);
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  std::vector<int64_t> sums(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      int64_t local = 0;
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int64_t> sum{0};
        ParallelForEach(&pool, 0, 256, [&](int64_t i) {
          if (i % 64 == 0) {
            ParallelForEach(&pool, 0, 32,
                            [&](int64_t j) { sum.fetch_add(j); });
          }
          sum.fetch_add(i);
        });
        local += sum.load();
      }
      sums[t] = local;
    });
  }
  for (std::thread& t : threads) t.join();
  const int64_t per_round =
      (255 * 256 / 2) + 4 * (31 * 32 / 2);  // outer + 4 nested regions
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t], per_round * kRounds) << "thread " << t;
  }
}

TEST(SchedulerStressTest, ScansAndSortsInterleaveOnOnePool) {
  // The primitives the parse pipeline composes — prefix scans from many
  // threads at once — racing on a small shared pool.
  ThreadPool pool(2);
  constexpr int kThreads = 4;
  const int64_t n = 100000;
  std::vector<int64_t> in(n, 1);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        std::vector<int64_t> out(n);
        InclusiveScan(&pool, in.data(), out.data(), n,
                      [](int64_t a, int64_t b) { return a + b; },
                      int64_t{0});
        if (out[n - 1] != n) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace parparaw
