#include <gtest/gtest.h>

#include <random>

#include "baseline/sequential_parser.h"
#include "columnar/ipc.h"
#include "convert/temporal.h"
#include "core/parser.h"
#include "query/sql.h"
#include "stream/streaming_parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

// --- cross-cutting stress and failure-injection tests ---

TEST(HardeningTest, ConcurrentParsesShareTheDefaultPool) {
  // Many parses racing through one pool must stay independent.
  ThreadPool pool(8);
  const std::string input = GenerateYelpLike(1, 64 * 1024);
  ParseOptions options;
  options.schema = YelpSchema();
  options.pool = &pool;
  auto reference = Parser::Parse(input, options);
  ASSERT_TRUE(reference.ok());
  for (int i = 0; i < 8; ++i) {
    auto result = Parser::Parse(input, options);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->table.Equals(reference->table)) << "iteration " << i;
  }
}

TEST(HardeningTest, StreamingEqualsOneShotOnAdversarialInputs) {
  for (uint64_t seed = 900; seed < 906; ++seed) {
    RandomCsvOptions gen;
    gen.num_records = 150;
    gen.num_columns = 4;
    gen.embedded_delimiter_probability = 0.35;
    gen.trailing_newline = (seed % 2) == 0;
    const std::string input = GenerateRandomCsv(seed, gen);
    ParseOptions base;
    for (int j = 0; j < 4; ++j) {
      base.schema.AddField(Field("c" + std::to_string(j),
                                 DataType::String()));
    }
    auto one_shot = Parser::Parse(input, base);
    ASSERT_TRUE(one_shot.ok());
    for (size_t partition : {64u, 257u, 1024u}) {
      StreamingOptions streaming;
      streaming.base = base;
      streaming.partition_size = partition;
      auto streamed = StreamingParser::Parse(input, streaming);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      EXPECT_TRUE(streamed->table.Equals(one_shot->table))
          << "seed " << seed << " partition " << partition;
    }
  }
}

TEST(HardeningTest, IpcRandomCorruptionNeverCrashes) {
  ParseOptions options;
  options.schema = TaxiSchema();
  auto parsed = Parser::Parse(GenerateTaxiLike(31, 8 * 1024), options);
  ASSERT_TRUE(parsed.ok());
  auto bytes = SerializeTable(parsed->table);
  ASSERT_TRUE(bytes.ok());
  std::mt19937_64 rng(17);
  int failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = *bytes;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng() % corrupted.size()] ^=
          static_cast<char>(1 << (rng() % 8));
    }
    auto result = DeserializeTable(corrupted);
    // Either a clean error or a structurally valid table; never a crash.
    if (!result.ok()) ++failures;
  }
  // Flips inside value buffers legitimately deserialize (to different
  // values); flips in the framing/offsets must fail cleanly. The real
  // invariant is "no crash on any corruption", plus a sanity floor on the
  // validator actually firing.
  EXPECT_GT(failures, 20);
}

TEST(HardeningTest, TemporalFormatParseRoundTripSweep) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const int32_t days = static_cast<int32_t>(rng() % 80000) - 20000;
    const std::string text = FormatDate32(days);
    int32_t parsed;
    ASSERT_TRUE(ParseDate32(text, &parsed)) << text;
    ASSERT_EQ(parsed, days) << text;
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const int64_t micros =
        (static_cast<int64_t>(rng() % 4000000000ull) - 1000000000) *
            1000000 +
        static_cast<int64_t>(rng() % 1000000);
    const std::string text = FormatTimestampMicros(micros);
    int64_t parsed;
    ASSERT_TRUE(ParseTimestampMicros(text, &parsed)) << text;
    ASSERT_EQ(parsed, micros) << text;
  }
}

TEST(HardeningTest, PackedTransitionRowsMatchBuilderInput) {
  // Dfa::Row packs 16 4-bit states; verify the packing across every
  // (state, group) of the RFC 4180 machine against Table 1's layout.
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;
  for (int g = 0; g < dfa.num_symbol_groups(); ++g) {
    const Dfa::Row row = dfa.row(g);
    for (int s = 0; s < dfa.num_states(); ++s) {
      EXPECT_EQ((row >> (4 * s)) & 0xF, dfa.NextState(s, g));
    }
  }
}

TEST(HardeningTest, SqlOverLineitemEndToEnd) {
  DsvOptions dsv;
  dsv.field_delimiter = '|';
  dsv.quote = 0;
  auto dsv_format = DsvFormat(dsv);
  ASSERT_TRUE(dsv_format.ok());
  ParseOptions options;
  options.format = *dsv_format;
  options.schema = LineitemSchema();
  auto parsed = Parser::Parse(GenerateLineitemLike(9, 64 * 1024), options);
  ASSERT_TRUE(parsed.ok());
  auto q1 = ExecuteSql(
      "SELECT count(*), sum(l_quantity), mean(l_extendedprice) FROM "
      "lineitem WHERE l_shipdate <= 2000-09-02 GROUP BY l_returnflag",
      parsed->table);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_GE(q1->num_rows, 1);
  EXPECT_LE(q1->num_rows, 3);
  // All groups saw at least one row.
  for (int64_t r = 0; r < q1->num_rows; ++r) {
    EXPECT_GT(q1->columns[1].Value<int64_t>(r), 0);
  }
}

TEST(HardeningTest, HugeColumnCountsAndSingleColumn) {
  // 300 columns exercise multi-pass radix partitioning (> 1 byte of tag
  // bits would need 2 passes at 8 bits; 300 needs 9 bits -> 2 passes).
  std::string wide;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 300; ++c) {
      if (c > 0) wide.push_back(',');
      wide += std::to_string(r * 300 + c);
    }
    wide.push_back('\n');
  }
  ParseOptions options;
  auto result = Parser::Parse(wide, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_columns(), 300);
  EXPECT_EQ(result->table.columns[299].StringValue(4), "1499");

  // Degenerate single-column input.
  auto single = Parser::Parse("alpha\nbeta\n", options);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->table.num_columns(), 1);
}

TEST(HardeningTest, AllBytesInputRobustness) {
  // Feed every byte value 0-255 as unquoted data; parsing must not crash
  // and must match the sequential reference.
  std::string input;
  for (int b = 0; b < 256; ++b) {
    input.push_back(static_cast<char>(b));
  }
  input.push_back('\n');
  ParseOptions options;
  options.chunk_size = 7;
  auto expected = SequentialParser::Parse(input, options);
  ASSERT_TRUE(expected.ok());
  auto got = Parser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST(HardeningTest, RecordLargerThanEveryChunk) {
  // One 100 KB quoted field with a 31-byte chunk size: thousands of
  // chunks inside a single quoted context.
  std::string big(100 * 1024, 'x');
  big[50] = ',';
  big[51] = '\n';
  const std::string input = "a,\"" + big + "\"\nb,short\n";
  ParseOptions options;
  options.schema.AddField(Field("k", DataType::String()));
  options.schema.AddField(Field("v", DataType::String()));
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[1].StringValue(0).size(), big.size());
  EXPECT_EQ(result->table.columns[1].StringValue(1), "short");
}

}  // namespace
}  // namespace parparaw
