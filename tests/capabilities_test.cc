#include <gtest/gtest.h>

#include <string>

#include "core/parser.h"
#include "dfa/formats.h"

namespace parparaw {
namespace {

TEST(CapabilitiesTest, SkipRowsPrunesHeader) {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("name", DataType::String()));
  options.skip_rows = 1;
  auto result = Parser::Parse("id,name\n1,a\n2,b\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), 1);
}

TEST(CapabilitiesTest, SkipRowsAreRawLinesNotRecords) {
  // A quoted newline makes record 0 span two physical rows; skipping two
  // rows cuts into the middle of it — rows are raw lines by design (§4.3).
  ParseOptions options;
  options.skip_rows = 2;
  auto result = Parser::Parse("\"a\nb\",x\nsecond,y\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "second");
}

TEST(CapabilitiesTest, SkipMoreRowsThanExist) {
  ParseOptions options;
  options.skip_rows = 10;
  auto result = Parser::Parse("a,b\nc,d\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows, 0);
}

TEST(CapabilitiesTest, SkipRecordsRemovesRows) {
  ParseOptions options;
  options.skip_records = {0, 2};
  auto result = Parser::Parse("r0\nr1\nr2\nr3\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "r1");
  EXPECT_EQ(result->table.columns[0].StringValue(1), "r3");
  EXPECT_EQ(result->records_dropped, 2);
}

TEST(CapabilitiesTest, SelectColumnsViaSkip) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::Int64()));
  options.schema.AddField(Field("b", DataType::String()));
  options.schema.AddField(Field("c", DataType::Int64()));
  options.skip_columns = {1};
  auto result = Parser::Parse("1,middle,3\n4,x,6\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_columns(), 2);
  EXPECT_EQ(result->table.schema.field(0).name, "a");
  EXPECT_EQ(result->table.schema.field(1).name, "c");
  EXPECT_EQ(result->table.columns[1].Value<int64_t>(1), 6);
}

TEST(CapabilitiesTest, InferNumberOfColumns) {
  ParseOptions options;  // no schema
  auto result = Parser::Parse("a,b,c\nd,e,f\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_columns(), 3);
  EXPECT_EQ(result->min_columns, 3u);
  EXPECT_EQ(result->max_columns, 3u);
}

TEST(CapabilitiesTest, MinMaxColumnsReportedForRaggedInput) {
  ParseOptions options;
  auto result = Parser::Parse("a\nb,c\nd,e,f,g\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_columns, 1u);
  EXPECT_EQ(result->max_columns, 4u);
  EXPECT_EQ(result->table.num_columns(), 4);
}

TEST(CapabilitiesTest, TypeInference) {
  ParseOptions options;
  options.infer_types = true;
  auto result = Parser::Parse(
      "1,1.5,2020-01-01,2020-01-01 10:00:00,true,mixed\n"
      "2,2,2021-06-15,2021-06-15,false,7\n",
      options);
  ASSERT_TRUE(result.ok());
  const Schema& schema = result->table.schema;
  EXPECT_TRUE(schema.field(0).type == DataType::Int64());
  EXPECT_TRUE(schema.field(1).type == DataType::Float64());  // int ⊔ float
  EXPECT_TRUE(schema.field(2).type == DataType::Date32());
  EXPECT_TRUE(schema.field(3).type ==
              DataType::TimestampMicros());  // ts ⊔ date
  EXPECT_TRUE(schema.field(4).type == DataType::Bool());
  EXPECT_TRUE(schema.field(5).type == DataType::String());  // string ⊔ int
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 2);
  EXPECT_DOUBLE_EQ(result->table.columns[1].Value<double>(1), 2.0);
}

TEST(CapabilitiesTest, InferenceWithEmptyColumnFallsBackToString) {
  ParseOptions options;
  options.infer_types = true;
  auto result = Parser::Parse("1,\n2,\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->table.schema.field(0).type == DataType::Int64());
  EXPECT_TRUE(result->table.schema.field(1).type == DataType::String());
}

TEST(CapabilitiesTest, RejectPolicyWithSchema) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::String()));
  options.schema.AddField(Field("b", DataType::String()));
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto result = Parser::Parse("x,y\nshort\nz,w\np,q,extra\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "x");
  EXPECT_EQ(result->table.columns[0].StringValue(1), "z");
  EXPECT_EQ(result->records_dropped, 2);
}

TEST(CapabilitiesTest, RejectPolicyWithoutSchemaUsesMaxCount) {
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto result = Parser::Parse("a,b,c\nshort\nd,e,f\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.num_columns(), 3);
}

TEST(CapabilitiesTest, ValidatePolicy) {
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  EXPECT_TRUE(Parser::Parse("a,b\nc,d\n", options).ok());
  EXPECT_FALSE(Parser::Parse("a,b\nc\n", options).ok());
}

TEST(CapabilitiesTest, RejectCombinesWithSkipRecords) {
  // Skipped records are exempt from the column-count check.
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  options.skip_records = {1};
  auto result = Parser::Parse("a,b\nBROKEN\nc,d\n", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows, 2);
}

TEST(CapabilitiesTest, BlockAndDeviceCollaborationLevels) {
  // Force tiny thresholds so every collaboration path runs.
  const std::string big_a(1000, 'A');
  const std::string big_b(5000, 'B');
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("text", DataType::String()));
  options.block_collaboration_threshold = 64;
  options.device_collaboration_threshold = 2000;
  const std::string input =
      "1,short\n2," + big_a + "\n3," + big_b + "\n4,tiny\n";
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 4);
  EXPECT_EQ(result->table.columns[1].StringValue(0), "short");
  EXPECT_EQ(result->table.columns[1].StringValue(1), big_a);
  EXPECT_EQ(result->table.columns[1].StringValue(2), big_b);
  EXPECT_EQ(result->table.columns[1].StringValue(3), "tiny");
}

TEST(CapabilitiesTest, NotNullableColumnRejectsNullRows) {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64(), /*nullable=*/false));
  auto result = Parser::Parse("1\n\n3\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 3);
  EXPECT_EQ(result->table.rejected[0], 0);
  EXPECT_EQ(result->table.rejected[1], 1);  // empty -> null -> reject
  EXPECT_EQ(result->table.rejected[2], 0);
}

TEST(CapabilitiesTest, SchemaWiderThanInputYieldsNullColumns) {
  ParseOptions options;
  options.schema.AddField(Field("a", DataType::String()));
  options.schema.AddField(Field("b", DataType::String()));
  options.schema.AddField(Field("c", DataType::String()));
  auto result = Parser::Parse("x,y\nz,w\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_columns(), 3);
  EXPECT_TRUE(result->table.columns[2].IsNull(0));
  EXPECT_TRUE(result->table.columns[2].IsNull(1));
}

TEST(CapabilitiesTest, ExtendedLogFormatEndToEnd) {
  auto format = ExtendedLogFormat();
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  const std::string input =
      "#Version: 1.0\n"
      "#Fields: date time method uri status\n"
      "2020-05-01 10:00:00 GET /index.html 200\n"
      "2020-05-01 10:00:01 POST \"/search q=a b\" 404\n";
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 2);
  ASSERT_EQ(result->table.num_columns(), 5);
  EXPECT_EQ(result->table.columns[2].StringValue(0), "GET");
  // The quoted URI keeps its embedded spaces.
  EXPECT_EQ(result->table.columns[3].StringValue(1), "/search q=a b");
  EXPECT_EQ(result->table.columns[4].StringValue(1), "404");
}

}  // namespace
}  // namespace parparaw
