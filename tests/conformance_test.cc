#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/sequential_parser.h"
#include "core/parser.h"

namespace parparaw {
namespace {

/// Table-driven RFC 4180 conformance catalogue: every case records the
/// input and the expected rows/fields (NULL spelled as "\x01NULL" since
/// CSV itself cannot express it). Each case runs through ParPaRaw at three
/// chunk sizes and through the sequential reference.

constexpr const char* kNull = "\x01NULL";

struct ConformanceCase {
  const char* name;
  const char* input;
  std::vector<std::vector<std::string>> rows;
};

const std::vector<ConformanceCase>& Cases() {
  static const std::vector<ConformanceCase>& cases =
      *new std::vector<ConformanceCase>{
          {"simple", "a,b\nc,d\n", {{"a", "b"}, {"c", "d"}}},
          {"no_trailing_newline", "a,b\nc,d", {{"a", "b"}, {"c", "d"}}},
          {"quoted_plain", "\"a\",\"b\"\n", {{"a", "b"}}},
          {"quoted_comma", "\"a,b\",c\n", {{"a,b", "c"}}},
          {"quoted_newline", "\"a\nb\",c\n", {{"a\nb", "c"}}},
          {"escaped_quote", "\"a\"\"b\"\n", {{"a\"b"}}},
          {"only_escaped_quote", "\"\"\"\"\n", {{"\""}}},
          {"empty_quoted", "\"\",x\n", {{"", "x"}}},
          // Present-but-empty string fields are valid "" (NULL marks
          // *missing* fields of short records).
          {"empty_fields", ",,\n", {{"", "", ""}}},
          {"empty_line_is_empty_record", "a\n\nb\n", {{"a"}, {""}, {"b"}}},
          {"single_field", "solo\n", {{"solo"}}},
          {"single_field_no_newline", "solo", {{"solo"}}},
          {"trailing_comma", "a,\n", {{"a", ""}}},
          {"leading_comma", ",a\n", {{"", "a"}}},
          {"quote_then_delims", "\"x\",\"y\"\n\"z\",w\n",
           {{"x", "y"}, {"z", "w"}}},
          {"quoted_trailing_record", "a,\"end", {{"a", "end"}}},
          {"crlf_not_special_by_default", "a\r\n",
           {{"a\r"}}},  // use DsvOptions.ignore_carriage_return for CRLF
          {"unicode_data", "héllo,wörld\n", {{"héllo", "wörld"}}},
          {"long_field",
           "short,aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n",
           {{"short",
             "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}}},
          {"many_records", "1\n2\n3\n4\n5\n6\n7\n8\n",
           {{"1"}, {"2"}, {"3"}, {"4"}, {"5"}, {"6"}, {"7"}, {"8"}}},
          {"spaces_preserved", " a , b \n", {{" a ", " b "}}},
          {"quoted_field_with_spaces_outside_kept",
           "\"a\",  x\n", {{"a", "  x"}}},
      };
  return cases;
}

void CheckTable(const ConformanceCase& test, const Table& table,
                const std::string& context) {
  ASSERT_EQ(table.num_rows, static_cast<int64_t>(test.rows.size()))
      << test.name << " " << context;
  size_t max_cols = 0;
  for (const auto& row : test.rows) max_cols = std::max(max_cols, row.size());
  ASSERT_EQ(table.num_columns(), static_cast<int>(max_cols))
      << test.name << " " << context;
  for (size_t r = 0; r < test.rows.size(); ++r) {
    for (size_t c = 0; c < max_cols; ++c) {
      const Column& column = table.columns[c];
      const std::string expected =
          c < test.rows[r].size() ? test.rows[r][c] : kNull;
      if (expected == kNull) {
        EXPECT_TRUE(column.IsNull(r))
            << test.name << " " << context << " row " << r << " col " << c;
      } else {
        ASSERT_FALSE(column.IsNull(r))
            << test.name << " " << context << " row " << r << " col " << c;
        EXPECT_EQ(column.StringValue(r), expected)
            << test.name << " " << context << " row " << r << " col " << c;
      }
    }
  }
}

TEST(ConformanceTest, Rfc4180Catalogue) {
  for (const ConformanceCase& test : Cases()) {
    for (size_t chunk : {2u, 31u, 4096u}) {
      ParseOptions options;
      options.chunk_size = chunk;
      auto result = Parser::Parse(test.input, options);
      ASSERT_TRUE(result.ok())
          << test.name << ": " << result.status().ToString();
      CheckTable(test, result->table,
                 "parparaw chunk=" + std::to_string(chunk));
    }
    auto sequential = SequentialParser::Parse(test.input, ParseOptions());
    ASSERT_TRUE(sequential.ok()) << test.name;
    CheckTable(test, sequential->table, "sequential");
  }
}

TEST(ConformanceTest, AllTaggingModesAgreeOnCatalogue) {
  for (const ConformanceCase& test : Cases()) {
    ParseOptions tagged;
    auto reference = Parser::Parse(test.input, tagged);
    ASSERT_TRUE(reference.ok()) << test.name;
    for (TaggingMode mode : {TaggingMode::kInlineTerminated,
                             TaggingMode::kVectorDelimited}) {
      // Inline/vector require consistent column counts; skip ragged cases.
      if (reference->min_columns != reference->max_columns) continue;
      ParseOptions options;
      options.tagging_mode = mode;
      auto result = Parser::Parse(test.input, options);
      ASSERT_TRUE(result.ok()) << test.name;
      EXPECT_TRUE(result->table.Equals(reference->table)) << test.name;
    }
  }
}

}  // namespace
}  // namespace parparaw
