#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parser.h"
#include "io/file.h"
#include "loader/bulk_loader.h"
#include "obs/obs.h"
#include "robust/failpoint.h"
#include "robust/quarantine.h"
#include "robust/reparse.h"
#include "robust/resource_guard.h"
#include "stream/streaming_parser.h"

namespace parparaw {
namespace {

using robust::CountTrigger;
using robust::ErrorPolicy;
using robust::EveryNthTrigger;
using robust::FailpointRegistry;
using robust::FailpointTrigger;
using robust::ProbabilityTrigger;

// Every test in this file may arm failpoints; tear them all down so no
// schedule leaks into later tests (or later files in the same binary).
class RobustTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Failpoint registry.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, DisarmedFailpointIsFree) {
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(robust::CheckFailpoint("never.armed").ok());
}

TEST_F(RobustTest, CountTriggerFiresFirstNHits) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.Arm("t.count", CountTrigger(2));
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  EXPECT_FALSE(robust::CheckFailpoint("t.count").ok());
  EXPECT_FALSE(robust::CheckFailpoint("t.count").ok());
  EXPECT_TRUE(robust::CheckFailpoint("t.count").ok());
  EXPECT_TRUE(robust::CheckFailpoint("t.count").ok());
  EXPECT_EQ(registry.hits("t.count"), 4);
  EXPECT_EQ(registry.fires("t.count"), 2);
  registry.Disarm("t.count");
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
}

TEST_F(RobustTest, EveryNthTriggerFiresPeriodically) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.Arm("t.nth", EveryNthTrigger(3));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!robust::CheckFailpoint("t.nth").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true}));
}

TEST_F(RobustTest, ProbabilityTriggerReplaysExactly) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  const auto run = [&] {
    registry.Arm("t.prob", ProbabilityTrigger(0.5, /*seed=*/42));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!robust::CheckFailpoint("t.prob").ok());
    }
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // p=0.5 over 64 draws: both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);

  registry.Arm("t.sure", ProbabilityTrigger(1.0, 7));
  EXPECT_FALSE(robust::CheckFailpoint("t.sure").ok());
  registry.Arm("t.never", ProbabilityTrigger(0.0, 7));
  EXPECT_TRUE(robust::CheckFailpoint("t.never").ok());
}

TEST_F(RobustTest, SpecParsing) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(
      registry.ArmFromSpec("a=2; b=every:3; c=prob:0.5:7").ok());
  EXPECT_FALSE(robust::CheckFailpoint("a").ok());
  EXPECT_FALSE(robust::CheckFailpoint("a").ok());
  EXPECT_TRUE(robust::CheckFailpoint("a").ok());
  EXPECT_TRUE(robust::CheckFailpoint("b").ok());
  EXPECT_TRUE(robust::CheckFailpoint("b").ok());
  EXPECT_FALSE(robust::CheckFailpoint("b").ok());

  // Flags select the injected code and the transient bit.
  ASSERT_TRUE(registry.ArmFromSpec("t=1:transient; p=1:parse; r=1:resource")
                  .ok());
  bool transient = false;
  const Status t = robust::CheckFailpoint("t", &transient);
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(transient);
  EXPECT_EQ(robust::CheckFailpoint("p").code(), StatusCode::kParseError);
  EXPECT_EQ(robust::CheckFailpoint("r").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(RobustTest, MalformedSpecsAreRejected) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.ArmFromSpec("noequals").ok());
  EXPECT_FALSE(registry.ArmFromSpec("x=").ok());
  EXPECT_FALSE(registry.ArmFromSpec("=1").ok());
  EXPECT_FALSE(registry.ArmFromSpec("x=count:").ok());
  EXPECT_FALSE(registry.ArmFromSpec("x=bogus:1").ok());
  EXPECT_FALSE(registry.ArmFromSpec("x=1:unknownflag").ok());
}

// ---------------------------------------------------------------------------
// Status context threading.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, WithContextPrependsStage) {
  const Status inner = Status::ParseError("bad value");
  const Status outer = inner.WithContext("step.convert");
  EXPECT_EQ(outer.code(), StatusCode::kParseError);
  EXPECT_EQ(outer.message(), "step.convert: bad value");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST_F(RobustTest, ParseErrorsCarryStepContext) {
  ParseOptions options;
  options.validate = true;
  // An unterminated quote fails DFA validation inside the context step.
  const auto result = Parser::Parse("a,\"broken\nrow,3\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("step."), std::string::npos)
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Resource guards.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, GuardedAssignMapsFailpointCode) {
  FailpointTrigger trigger = CountTrigger(1);
  trigger.code = StatusCode::kResourceExhausted;
  FailpointRegistry::Instance().Arm("alloc.test", trigger);
  std::vector<uint8_t> v;
  const Status st = robust::GuardedAssign("alloc.test", &v, 16, uint8_t{0});
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(robust::GuardedAssign("alloc.test", &v, 16, uint8_t{0}).ok());
  EXPECT_EQ(v.size(), 16u);
}

TEST_F(RobustTest, ClampPartitionSizeForBudget) {
  // No budget: untouched.
  EXPECT_EQ(robust::ClampPartitionSizeForBudget(1 << 20, 0), 1 << 20);
  // Budget of 16 KiB affords a 1 KiB partition (16x working set).
  EXPECT_EQ(robust::ClampPartitionSizeForBudget(1 << 20, 16 * 1024), 1024);
  // Already affordable: untouched.
  EXPECT_EQ(robust::ClampPartitionSizeForBudget(512, 16 * 1024), 512);
  // Absurdly small budgets clamp to the floor rather than zero.
  EXPECT_EQ(robust::ClampPartitionSizeForBudget(1 << 20, 64), 256);
}

TEST_F(RobustTest, RetryPolicyBackoffDoublesAndCaps) {
  robust::RetryPolicy policy;
  EXPECT_EQ(policy.DelayUs(1), 50);
  EXPECT_EQ(policy.DelayUs(2), 100);
  EXPECT_EQ(policy.DelayUs(3), 200);
  EXPECT_EQ(policy.DelayUs(30), 5000);  // capped
}

TEST_F(RobustTest, RetryTransientRetriesOnlyTransientErrors) {
  robust::RetryPolicy fast{/*max_attempts=*/4, /*base_delay_us=*/1,
                           /*max_delay_us=*/2};
  const auto transient = [](const Status& st) {
    return st.code() == StatusCode::kIoError;
  };

  int calls = 0;
  Status st = robust::RetryTransient(
      fast,
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      transient);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  st = robust::RetryTransient(
      fast,
      [&] {
        ++calls;
        return Status::ParseError("fatal");
      },
      transient);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);  // non-transient: no retry

  calls = 0;
  st = robust::RetryTransient(
      fast,
      [&] {
        ++calls;
        return Status::IoError("always");
      },
      transient);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);  // budget exhausted
}

// ---------------------------------------------------------------------------
// I/O failpoints and transient recovery.
// ---------------------------------------------------------------------------

class TempFile {
 public:
  explicit TempFile(const std::string& contents)
      : path_("/tmp/parparaw_robust_" +
              std::to_string(reinterpret_cast<uintptr_t>(this)) + ".tmp") {
    EXPECT_TRUE(WriteStringToFile(path_, contents).ok());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST_F(RobustTest, TransientReadFaultsAreRetried) {
  const std::string payload = "a,b\n1,2\n";
  TempFile file(payload);
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromSpec("io.read=count:2:transient")
                  .ok());
  const auto contents = ReadFileToString(file.path());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(*contents, payload);
  EXPECT_GE(FailpointRegistry::Instance().fires("io.read"), 2);
}

TEST_F(RobustTest, FatalReadFaultPropagates) {
  TempFile file("x\n");
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmFromSpec("io.read=count:1").ok());
  const auto contents = ReadFileToString(file.path());
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
}

TEST_F(RobustTest, TransientWriteFaultsAreRetried) {
  const std::string path = "/tmp/parparaw_robust_write.tmp";
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromSpec("io.write=count:2:transient")
                  .ok());
  ASSERT_TRUE(WriteStringToFile(path, "payload").ok());
  FailpointRegistry::Instance().DisarmAll();
  const auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "payload");
  std::remove(path.c_str());
}

TEST_F(RobustTest, FatalWriteFaultPropagates) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmFromSpec("io.write=count:1").ok());
  EXPECT_FALSE(
      WriteStringToFile("/tmp/parparaw_robust_fatal.tmp", "payload").ok());
  std::remove("/tmp/parparaw_robust_fatal.tmp");
}

TEST_F(RobustTest, TellFaultLeavesReaderClosed) {
  TempFile file("1,2\n3,4\n");
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmFromSpec("io.tell=1").ok());
  FileChunkReader reader;
  EXPECT_FALSE(reader.Open(file.path()).ok());
  std::string chunk;
  bool eof = false;
  // A failed Open must not leave a half-open reader behind.
  EXPECT_FALSE(reader.ReadNext(16, &chunk, &eof).ok());
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(reader.Open(file.path()).ok());
  EXPECT_EQ(reader.file_size(), 8);
}

TEST_F(RobustTest, PoolTaskFaultReportsWithoutSkippingWork) {
  ThreadPool pool(4);
  FailpointRegistry::Instance().Arm("pool.task", CountTrigger(1));
  std::vector<int> hits(1000, 0);
  const Status st = ParallelForEach(&pool, 0, 1000,
                                    [&](int64_t i) { hits[i] = 1; });
  EXPECT_FALSE(st.ok());
  // Slice bodies always run: a fault changes error reporting, never the
  // computation (the invariant the chaos suite's bit-identity check needs).
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(hits[i], 1) << i;
}

// ---------------------------------------------------------------------------
// Memory budget degradation.
// ---------------------------------------------------------------------------

std::string MakeCsv(int rows) {
  std::string csv;
  for (int i = 0; i < rows; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i * 10) + ",name" +
           std::to_string(i) + "\n";
  }
  return csv;
}

Schema ThreeColumnSchema() {
  Schema schema;
  schema.AddField(Field("a", DataType::Int64()));
  schema.AddField(Field("b", DataType::Int64()));
  schema.AddField(Field("s", DataType::String()));
  return schema;
}

TEST_F(RobustTest, MonolithicParseRefusesOverBudget) {
  const std::string csv = MakeCsv(200);
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.memory_budget = 1024;  // ~16x input needed, way over
  const auto result = Parser::Parse(csv, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RobustTest, StreamingDegradesInsteadOfRefusing) {
  const std::string csv = MakeCsv(200);
  ParseOptions base;
  base.schema = ThreeColumnSchema();

  const auto reference = Parser::Parse(csv, base);
  ASSERT_TRUE(reference.ok());

  StreamingOptions streaming;
  streaming.base = base;
  streaming.base.memory_budget = 16 * 1024;  // affords 1 KiB partitions
  const auto result = StreamingParser::Parse(csv, streaming);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_partitions, 1);
  EXPECT_TRUE(result->table.Equals(reference->table));
}

TEST_F(RobustTest, LoaderDegradesToDiskStreaming) {
  const std::string csv = "a,b,s\n" + MakeCsv(500);
  TempFile file(csv);

  LoadOptions unrestricted;
  const auto full = BulkLoader::LoadFile(file.path(), unrestricted);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  LoadOptions budgeted;
  budgeted.memory_budget = 32 * 1024;  // file is ~8 KB; 16x won't fit
  const auto degraded = BulkLoader::LoadFile(file.path(), budgeted);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->rows_loaded, full->rows_loaded);
  EXPECT_TRUE(degraded->table.Equals(full->table));
}

// ---------------------------------------------------------------------------
// Quarantine capture.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, QuarantineCapturesByteAccurateSpans) {
  const std::string csv =
      "1,10,alpha\n"
      "oops,20,beta\n"
      "3,30,gamma\n";
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.error_policy = ErrorPolicy::kQuarantine;
  const auto result = Parser::Parse(csv, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->table.num_rows, 3);  // quarantined rows stay in place
  ASSERT_EQ(result->quarantine.size(), 1);
  const robust::QuarantineEntry& entry = result->quarantine.entries()[0];
  EXPECT_EQ(entry.row, 1);
  EXPECT_EQ(entry.raw, "oops,20,beta");
  EXPECT_EQ(csv.substr(static_cast<size_t>(entry.begin),
                       static_cast<size_t>(entry.end - entry.begin)),
            entry.raw);
  EXPECT_EQ(entry.column, 0);
  EXPECT_EQ(entry.stage, "convert");
  EXPECT_EQ(entry.code, StatusCode::kParseError);
  EXPECT_NE(entry.message.find("row 1"), std::string::npos);

  // Table::rejected is exactly the view over the quarantine.
  EXPECT_EQ(result->quarantine.RejectedBitmap(result->table.num_rows),
            result->table.rejected);
  EXPECT_NE(result->quarantine.FindRow(1), nullptr);
  EXPECT_EQ(result->quarantine.FindRow(0), nullptr);
  // The bad value is NULL, intact rows parsed normally.
  EXPECT_TRUE(result->table.columns[0].IsNull(1));
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(2), 3);
}

TEST_F(RobustTest, QuarantineSpansSurviveSkippedHeader) {
  const std::string csv =
      "a,b,s\n"
      "1,10,alpha\n"
      "bad,20,beta\n";
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.skip_rows = 1;
  options.error_policy = ErrorPolicy::kQuarantine;
  const auto result = Parser::Parse(csv, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->quarantine.size(), 1);
  const robust::QuarantineEntry& entry = result->quarantine.entries()[0];
  // Spans are relative to the caller's buffer, not the trimmed one.
  EXPECT_EQ(csv.substr(static_cast<size_t>(entry.begin),
                       static_cast<size_t>(entry.end - entry.begin)),
            "bad,20,beta");
}

TEST_F(RobustTest, QuarantineKeepsColumnCountMismatches) {
  const std::string csv =
      "1,10,alpha\n"
      "2,20\n"
      "3,30,gamma\n";
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.column_count_policy = ColumnCountPolicy::kReject;

  // Historical behaviour: the short record is dropped.
  const auto dropped = Parser::Parse(csv, options);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->table.num_rows, 2);
  EXPECT_EQ(dropped->records_dropped, 1);

  // Under quarantine it is kept — its bytes must exist for repair.
  options.error_policy = ErrorPolicy::kQuarantine;
  const auto kept = Parser::Parse(csv, options);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(kept->table.num_rows, 3);
  ASSERT_EQ(kept->quarantine.size(), 1);
  const robust::QuarantineEntry& entry = kept->quarantine.entries()[0];
  EXPECT_EQ(entry.row, 1);
  EXPECT_EQ(entry.raw, "2,20");
  EXPECT_EQ(entry.stage, "tag");
  EXPECT_EQ(entry.column, -1);  // record-level problem
}

TEST_F(RobustTest, ErrorPolicyFailStopsAtFirstBadRecord) {
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.error_policy = ErrorPolicy::kFail;
  const auto result = Parser::Parse("1,10,a\nbad,20,b\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos)
      << result.status().ToString();
}

TEST_F(RobustTest, ErrorPolicySkipCompactsRows) {
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.error_policy = ErrorPolicy::kSkip;
  const auto result = Parser::Parse("1,10,a\nbad,20,b\n3,30,c\n", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->records_dropped, 1);
  EXPECT_EQ(result->table.NumRejected(), 0);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), 1);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 3);
}

// ---------------------------------------------------------------------------
// Reparse recovery.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, ReparseRecoversForeignDialectRows) {
  // One row slipped in with ';' delimiters: under ',' it is a single field
  // that fails int64 conversion.
  const std::string csv =
      "1,10,alpha\n"
      "7;70;delta\n"
      "3,30,gamma\n";
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.error_policy = ErrorPolicy::kQuarantine;
  auto result = Parser::Parse(csv, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->quarantine.size(), 1);

  const auto recovered = robust::ReparseQuarantined(options, &*result);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, 1);
  EXPECT_TRUE(result->quarantine.empty());
  EXPECT_EQ(result->table.NumRejected(), 0);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 7);
  EXPECT_EQ(result->table.columns[1].Value<int64_t>(1), 70);
  EXPECT_EQ(result->table.columns[2].StringValue(1), "delta");
  // Untouched rows stay untouched.
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), 1);
  EXPECT_EQ(result->table.columns[2].StringValue(2), "gamma");
}

TEST_F(RobustTest, ReparseLeavesUnrecoverableEntriesBehind) {
  const std::string csv =
      "1,10,alpha\n"
      "junk,20,beta\n";  // 'junk' is malformed under every dialect
  ParseOptions options;
  options.schema = ThreeColumnSchema();
  options.error_policy = ErrorPolicy::kQuarantine;
  auto result = Parser::Parse(csv, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->quarantine.size(), 1);

  const auto recovered = robust::ReparseQuarantined(options, &*result);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 0);
  ASSERT_EQ(result->quarantine.size(), 1);
  EXPECT_EQ(result->table.rejected[1], 1);
  // Idempotent: a second pass neither crashes nor double-splices.
  const auto again = robust::ReparseQuarantined(options, &*result);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
}

// ---------------------------------------------------------------------------
// Streaming integration.
// ---------------------------------------------------------------------------

TEST_F(RobustTest, StreamingSkipsLeadingRowsOnlyOnce) {
  std::string csv = "a,b,s\n" + MakeCsv(50);
  ParseOptions base;
  base.schema = ThreeColumnSchema();
  base.skip_rows = 1;

  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = 64;  // many partitions
  const auto result = StreamingParser::Parse(csv, streaming);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->num_partitions, 2);
  // skip_rows prunes the stream head once, not one row per partition.
  EXPECT_EQ(result->table.num_rows, 50);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), 0);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(49), 49);
}

TEST_F(RobustTest, StreamingQuarantineIsStreamRelative) {
  // Bad rows land in different partitions.
  std::string csv;
  for (int i = 0; i < 40; ++i) {
    if (i == 7 || i == 29) {
      csv += "bad" + std::to_string(i) + ",1,x\n";
    } else {
      csv += std::to_string(i) + ",1,x\n";
    }
  }
  ParseOptions base;
  base.schema = ThreeColumnSchema();
  base.error_policy = ErrorPolicy::kQuarantine;

  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = 48;
  const auto result = StreamingParser::Parse(csv, streaming);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->num_partitions, 2);
  EXPECT_EQ(result->table.num_rows, 40);
  ASSERT_EQ(result->quarantine.size(), 2);
  for (const robust::QuarantineEntry& entry : result->quarantine.entries()) {
    // Rows index the concatenated table; spans index the original stream.
    EXPECT_TRUE(entry.row == 7 || entry.row == 29) << entry.row;
    EXPECT_EQ(csv.substr(static_cast<size_t>(entry.begin),
                         static_cast<size_t>(entry.end - entry.begin)),
              entry.raw);
    EXPECT_EQ(result->table.rejected[static_cast<size_t>(entry.row)], 1);
  }
  EXPECT_EQ(result->quarantine.RejectedBitmap(result->table.num_rows),
            result->table.rejected);
}

TEST_F(RobustTest, StreamChunkFaultFailsCleanly) {
  const std::string csv = MakeCsv(50);
  ParseOptions base;
  base.schema = ThreeColumnSchema();
  StreamingOptions streaming;
  streaming.base = base;
  streaming.partition_size = 128;
  FailpointRegistry::Instance().Arm("stream.chunk", EveryNthTrigger(2));
  const auto result = StreamingParser::Parse(csv, streaming);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(RobustTest, QuarantineSummaryTextMentionsEveryEntry) {
  robust::QuarantineTable q;
  robust::QuarantineEntry entry;
  entry.row = 3;
  entry.raw = "x,y";
  entry.stage = "convert";
  entry.message = "value is not a valid int64";
  q.Add(entry);
  const std::string text = q.SummaryText();
  EXPECT_NE(text.find("convert"), std::string::npos);
  EXPECT_NE(text.find("int64"), std::string::npos);
}

}  // namespace
}  // namespace parparaw
