// Seeded-determinism regression suite for the client-workload request
// generators (src/workload/request_stream.h): identical seeds must
// replay identical request streams, and the Zipf popularity pick must
// actually be head-heavy (that skew is what makes the serving soak and
// bench workloads collide on hot datasets).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/request_stream.h"

namespace parparaw {
namespace {

TEST(RequestStreamTest, SameSeedReplaysBitForBit) {
  RequestStream::Options options;
  options.seed = 7;
  options.arrivals_per_sec = 500;  // exercise inter-arrival draws too
  RequestStream a(options);
  RequestStream b(options);
  for (int i = 0; i < 5000; ++i) {
    const Request ra = a.Next();
    const Request rb = b.Next();
    ASSERT_EQ(ra.sequence, rb.sequence) << "draw " << i;
    ASSERT_EQ(ra.kind, rb.kind) << "draw " << i;
    ASSERT_EQ(ra.dataset, rb.dataset) << "draw " << i;
    ASSERT_EQ(ra.inter_arrival_us, rb.inter_arrival_us) << "draw " << i;
  }
}

TEST(RequestStreamTest, DifferentSeedsDiverge) {
  RequestStream::Options options;
  options.seed = 7;
  RequestStream a(options);
  options.seed = 8;
  RequestStream b(options);
  int diverged = 0;
  for (int i = 0; i < 200; ++i) {
    const Request ra = a.Next();
    const Request rb = b.Next();
    if (ra.dataset != rb.dataset || ra.kind != rb.kind) ++diverged;
  }
  EXPECT_GT(diverged, 50);
}

TEST(RequestStreamTest, ZipfHeadDominates) {
  ZipfPick zipf(100, 0.99, 42);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];

  // Every draw is in range.
  for (const auto& [item, count] : counts) {
    EXPECT_LT(item, 100u);
    EXPECT_GT(count, 0);
  }
  // The head item is by far the most popular...
  EXPECT_GT(counts[0], kDraws / 10);
  // ...and the top-10 items absorb well over half the draws, which a
  // uniform distribution (10%) never would.
  int head = 0;
  for (uint64_t item = 0; item < 10; ++item) head += counts[item];
  EXPECT_GT(head, kDraws / 2);
  // Monotone-ish decay: the head beats a mid-rank item by an order of
  // magnitude.
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(RequestStreamTest, UniformPickCoversAllDatasetsEvenly) {
  UniformPick uniform(8, 13);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[uniform.Next()];
  for (int item = 0; item < 8; ++item) {
    EXPECT_GT(counts[item], kDraws / 8 / 2) << "item " << item;
    EXPECT_LT(counts[item], kDraws / 8 * 2) << "item " << item;
  }
}

TEST(RequestStreamTest, MixProportionsApproximatelyHold) {
  RequestStream::Options options;
  options.seed = 99;
  options.mix.parse = 0.5;
  options.mix.stream_parse = 0.2;
  options.mix.query = 0.2;
  options.mix.ping = 0.1;
  RequestStream stream(options);
  std::map<RequestKind, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[stream.Next().kind];
  EXPECT_NEAR(counts[RequestKind::kParse] / double(kDraws), 0.5, 0.05);
  EXPECT_NEAR(counts[RequestKind::kStreamParse] / double(kDraws), 0.2, 0.05);
  EXPECT_NEAR(counts[RequestKind::kQuery] / double(kDraws), 0.2, 0.05);
  EXPECT_NEAR(counts[RequestKind::kPing] / double(kDraws), 0.1, 0.05);
}

TEST(RequestStreamTest, DeadlinesAreSeededAndBounded) {
  RequestStream::Options options;
  options.seed = 17;
  options.deadline_fraction = 0.25;
  options.deadline_min_ms = 50;
  options.deadline_max_ms = 500;
  RequestStream a(options);
  RequestStream b(options);
  int with_deadline = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const Request ra = a.Next();
    const Request rb = b.Next();
    ASSERT_EQ(ra.deadline_ms, rb.deadline_ms) << "draw " << i;
    if (ra.deadline_ms != 0) {
      ++with_deadline;
      EXPECT_GE(ra.deadline_ms, 50u);
      EXPECT_LE(ra.deadline_ms, 500u);
    }
  }
  // Roughly the requested fraction carries a deadline.
  EXPECT_NEAR(with_deadline / double(kDraws), 0.25, 0.05);

  // fraction 0 (the default) never stamps one — and never perturbs the
  // other draws relative to a pre-deadline stream.
  options.deadline_fraction = 0;
  RequestStream none(options);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(none.Next().deadline_ms, 0u);
}

TEST(RequestStreamTest, OpenLoopArrivalsAreExponential) {
  RequestStream::Options options;
  options.seed = 21;
  options.arrivals_per_sec = 1000;  // mean inter-arrival 1000us
  RequestStream stream(options);
  int64_t total_us = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const Request request = stream.Next();
    ASSERT_GE(request.inter_arrival_us, 0);
    total_us += request.inter_arrival_us;
  }
  const double mean = total_us / double(kDraws);
  EXPECT_GT(mean, 500.0);
  EXPECT_LT(mean, 2000.0);

  // Closed loop: no pacing at all.
  options.arrivals_per_sec = 0;
  RequestStream closed(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(closed.Next().inter_arrival_us, 0);
  }
}

}  // namespace
}  // namespace parparaw
