#include "api/reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/parser.h"
#include "io/file.h"
#include "stream/streaming_parser.h"

namespace parparaw {
namespace {

const char kCsv[] =
    "id,price,name\n"
    "1,9.50,\"chair, oak\"\n"
    "2,19.99,table\n"
    "3,4.25,\"lamp\n2-arm\"\n";

TEST(ReaderTest, FromBufferReadsTable) {
  auto table = Reader::FromBuffer(kCsv).Read();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows, 3);
  EXPECT_EQ(table->num_columns(), 3);
  // Sniffed header: column names come from the first row.
  EXPECT_EQ(table->schema.field(0).name, "id");
  EXPECT_EQ(table->schema.field(2).name, "name");
}

TEST(ReaderTest, FromFileMatchesFromBuffer) {
  const std::string path = "/tmp/parparaw_api_test.csv";
  ASSERT_TRUE(WriteStringToFile(path, kCsv).ok());
  auto from_file = Reader::FromFile(path).Read();
  auto from_buffer = Reader::FromBuffer(kCsv).Read();
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_TRUE(from_buffer.ok()) << from_buffer.status().ToString();
  EXPECT_TRUE(from_file->Equals(*from_buffer));
  std::remove(path.c_str());
}

TEST(ReaderTest, WithSchemaAndHeaderOverrideSniffing) {
  Schema schema;
  schema.AddField(Field("a", DataType::Int64()));
  schema.AddField(Field("b", DataType::Float64()));
  schema.AddField(Field("c", DataType::String()));
  auto table = Reader::FromBuffer("1,2.5,x\n2,3.5,y\n")
                   .WithSchema(schema)
                   .WithHeader(false)
                   .Read();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows, 2);
  EXPECT_TRUE(table->schema.field(0).type == DataType::Int64());
  EXPECT_EQ(table->columns[0].Value<int64_t>(1), 2);
}

TEST(ReaderTest, ReadDetailedCarriesQuarantine) {
  auto result = Reader::FromBuffer("a,b\n1,2\nnotanint,4\n")
                    .WithSchema([] {
                      Schema s;
                      s.AddField(Field("a", DataType::Int64()));
                      s.AddField(Field("b", DataType::Int64()));
                      return s;
                    }())
                    .WithHeader(true)
                    .WithErrorPolicy(robust::ErrorPolicy::kQuarantine)
                    .ReadDetailed();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_loaded, 2);
  ASSERT_EQ(result->quarantine.size(), 1);
  EXPECT_EQ(result->quarantine.entries()[0].row, 1);
}

TEST(ReaderTest, SerialAndPipelinedAreBitIdentical) {
  std::string csv = "n,s\n";
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + ",row" + std::to_string(i) + "\n";
  }
  auto pipelined =
      Reader::FromBuffer(csv).WithPartitionSize(700).Pipelined(true).Read();
  auto serial =
      Reader::FromBuffer(csv).WithPartitionSize(700).Pipelined(false).Read();
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(pipelined->Equals(*serial));
}

TEST(ReaderTest, ReadStreamDeliversAllRowsInBatches) {
  std::string csv = "n,s\n";
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + ",row" + std::to_string(i) + "\n";
  }
  int64_t rows = 0;
  int batches = 0;
  auto stats = Reader::FromBuffer(csv).WithPartitionSize(900).ReadStream(
      [&](Table&& batch) {
        rows += batch.num_rows;
        ++batches;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(rows, 500);
  EXPECT_EQ(batches, stats->num_partitions);
  EXPECT_GT(stats->num_partitions, 1);
}

TEST(ReaderTest, MissingFileFailsCleanly) {
  auto table = Reader::FromFile("/nonexistent/parparaw.csv").Read();
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

// --- ParseOptions::Validate, wired into every entry point ---

TEST(ValidateTest, AcceptsDefaults) {
  EXPECT_TRUE(ParseOptions().Validate().ok());
}

TEST(ValidateTest, RejectsNegativeSkips) {
  ParseOptions options;
  options.skip_rows = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.skip_records = {3, -2};
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.skip_columns = {-1};
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.memory_budget = -5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsOversizedChunk) {
  ParseOptions options;
  options.chunk_size = size_t{1} << 30;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsInvertedCollaborationThresholds) {
  ParseOptions options;
  options.block_collaboration_threshold = 1 << 20;
  options.device_collaboration_threshold = 256;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsInlineTerminatorCollidingWithDelimiter) {
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  options.terminator = ',';  // the RFC 4180 field delimiter
  const Status status = options.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  options.terminator = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.terminator = 0x1F;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ValidateTest, ForcedPlannerContradictionMatrix) {
  // PlannerMode::kForce means "the sampler decides everything": pinning any
  // plannable knob alongside it is a contradiction, not a preference.
  using Pin = void (*)(ParseOptions*);
  const Pin pins[] = {
      [](ParseOptions* o) { o->kernel = simd::KernelKind::kScalar; },
      [](ParseOptions* o) { o->kernel = simd::KernelKind::kSimd; },
      [](ParseOptions* o) { o->chunk_size = 31; },
      [](ParseOptions* o) { o->tagging_mode = TaggingMode::kRecordTags; },
      [](ParseOptions* o) { o->transpose_mode = TransposeMode::kFieldGather; },
      [](ParseOptions* o) { o->partition_size = 1 << 20; },
  };
  int idx = 0;
  for (const Pin pin : pins) {
    ParseOptions forced;
    forced.planner = PlannerMode::kForce;
    pin(&forced);
    EXPECT_EQ(forced.Validate().code(), StatusCode::kInvalidArgument)
        << "pin #" << idx;
    // The same pin is legal under kAuto (it just shrinks the decision) and
    // under kDisabled (static resolution).
    ParseOptions auto_mode;
    pin(&auto_mode);
    EXPECT_TRUE(auto_mode.Validate().ok()) << "pin #" << idx;
    ParseOptions disabled;
    disabled.planner = PlannerMode::kDisabled;
    pin(&disabled);
    EXPECT_TRUE(disabled.Validate().ok()) << "pin #" << idx;
    ++idx;
  }
  // All knobs auto: kForce is coherent.
  ParseOptions forced;
  forced.planner = PlannerMode::kForce;
  EXPECT_TRUE(forced.Validate().ok());
}

TEST(ValidateTest, RejectsValidatePolicyWithQuarantine) {
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  options.error_policy = robust::ErrorPolicy::kQuarantine;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, EveryEntryPointRejectsInvalidOptionsUpFront) {
  ParseOptions bad;
  bad.skip_rows = -1;
  EXPECT_EQ(Parser::Parse("a,b\n", bad).status().code(),
            StatusCode::kInvalidArgument);

  StreamingOptions streaming;
  streaming.base = bad;
  EXPECT_EQ(StreamingParser::Parse("a,b\n", streaming).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ReaderTest, WithTuningPinsTheParseConfiguration) {
  Tuning tuning;
  tuning.kernel = simd::KernelKind::kScalar;
  tuning.chunk_size = 31;
  tuning.transpose_mode = TransposeMode::kSymbolSort;
  auto pinned = Reader::FromBuffer(kCsv).WithTuning(tuning).Read();
  auto defaults = Reader::FromBuffer(kCsv).Read();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_TRUE(defaults.ok()) << defaults.status().ToString();
  EXPECT_TRUE(pinned->Equals(*defaults));
}

TEST(ReaderTest, WithTuningSurfacesContradictionsBeforeReading) {
  Tuning contradiction;
  contradiction.planner = PlannerMode::kForce;
  contradiction.chunk_size = 31;
  auto table = Reader::FromBuffer(kCsv).WithTuning(contradiction).Read();
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReaderTest, ExplainReportsThePlanWithoutParsing) {
  auto plan = Reader::FromBuffer(kCsv).Explain();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->planned);
  EXPECT_GT(plan->chunk_size, 0u);
  EXPECT_NE(plan->tagging_mode, TaggingMode::kAuto);
  EXPECT_NE(plan->transpose_mode, TransposeMode::kAuto);
  EXPECT_NE(plan->Explain().find("[planned]"), std::string::npos)
      << plan->Explain();
  EXPECT_GT(plan->stats.records, 0);
}

TEST(ReaderTest, ExplainMatchesBetweenFileAndBuffer) {
  const std::string path = "/tmp/parparaw_api_explain.csv";
  ASSERT_TRUE(WriteStringToFile(path, kCsv).ok());
  auto from_file = Reader::FromFile(path).Explain();
  auto from_buffer = Reader::FromBuffer(kCsv).Explain();
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_TRUE(from_buffer.ok()) << from_buffer.status().ToString();
  // Same bytes, same plan: the planner must not care where they came from.
  EXPECT_EQ(from_file->chunk_size, from_buffer->chunk_size);
  EXPECT_EQ(from_file->kernel, from_buffer->kernel);
  EXPECT_EQ(from_file->tagging_mode, from_buffer->tagging_mode);
  EXPECT_EQ(from_file->Explain(), from_buffer->Explain());
  std::remove(path.c_str());
}

TEST(ReaderTest, ExplainReportsStaticResolutionWhenPlanningIsDisabled) {
  Tuning tuning;
  tuning.planner = PlannerMode::kDisabled;
  auto plan = Reader::FromBuffer(kCsv).WithTuning(tuning).Explain();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->planned);
  EXPECT_EQ(plan->chunk_size, 31u);
  EXPECT_NE(plan->Explain().find("[static]"), std::string::npos)
      << plan->Explain();
}

}  // namespace
}  // namespace parparaw
