#include "api/reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/parser.h"
#include "io/file.h"
#include "stream/streaming_parser.h"

namespace parparaw {
namespace {

const char kCsv[] =
    "id,price,name\n"
    "1,9.50,\"chair, oak\"\n"
    "2,19.99,table\n"
    "3,4.25,\"lamp\n2-arm\"\n";

TEST(ReaderTest, FromBufferReadsTable) {
  auto table = Reader::FromBuffer(kCsv).Read();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows, 3);
  EXPECT_EQ(table->num_columns(), 3);
  // Sniffed header: column names come from the first row.
  EXPECT_EQ(table->schema.field(0).name, "id");
  EXPECT_EQ(table->schema.field(2).name, "name");
}

TEST(ReaderTest, FromFileMatchesFromBuffer) {
  const std::string path = "/tmp/parparaw_api_test.csv";
  ASSERT_TRUE(WriteStringToFile(path, kCsv).ok());
  auto from_file = Reader::FromFile(path).Read();
  auto from_buffer = Reader::FromBuffer(kCsv).Read();
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  ASSERT_TRUE(from_buffer.ok()) << from_buffer.status().ToString();
  EXPECT_TRUE(from_file->Equals(*from_buffer));
  std::remove(path.c_str());
}

TEST(ReaderTest, WithSchemaAndHeaderOverrideSniffing) {
  Schema schema;
  schema.AddField(Field("a", DataType::Int64()));
  schema.AddField(Field("b", DataType::Float64()));
  schema.AddField(Field("c", DataType::String()));
  auto table = Reader::FromBuffer("1,2.5,x\n2,3.5,y\n")
                   .WithSchema(schema)
                   .WithHeader(false)
                   .Read();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows, 2);
  EXPECT_TRUE(table->schema.field(0).type == DataType::Int64());
  EXPECT_EQ(table->columns[0].Value<int64_t>(1), 2);
}

TEST(ReaderTest, ReadDetailedCarriesQuarantine) {
  auto result = Reader::FromBuffer("a,b\n1,2\nnotanint,4\n")
                    .WithSchema([] {
                      Schema s;
                      s.AddField(Field("a", DataType::Int64()));
                      s.AddField(Field("b", DataType::Int64()));
                      return s;
                    }())
                    .WithHeader(true)
                    .WithErrorPolicy(robust::ErrorPolicy::kQuarantine)
                    .ReadDetailed();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_loaded, 2);
  ASSERT_EQ(result->quarantine.size(), 1);
  EXPECT_EQ(result->quarantine.entries()[0].row, 1);
}

TEST(ReaderTest, SerialAndPipelinedAreBitIdentical) {
  std::string csv = "n,s\n";
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + ",row" + std::to_string(i) + "\n";
  }
  auto pipelined =
      Reader::FromBuffer(csv).WithPartitionSize(700).Pipelined(true).Read();
  auto serial =
      Reader::FromBuffer(csv).WithPartitionSize(700).Pipelined(false).Read();
  ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(pipelined->Equals(*serial));
}

TEST(ReaderTest, ReadStreamDeliversAllRowsInBatches) {
  std::string csv = "n,s\n";
  for (int i = 0; i < 500; ++i) {
    csv += std::to_string(i) + ",row" + std::to_string(i) + "\n";
  }
  int64_t rows = 0;
  int batches = 0;
  auto stats = Reader::FromBuffer(csv).WithPartitionSize(900).ReadStream(
      [&](Table&& batch) {
        rows += batch.num_rows;
        ++batches;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(rows, 500);
  EXPECT_EQ(batches, stats->num_partitions);
  EXPECT_GT(stats->num_partitions, 1);
}

TEST(ReaderTest, MissingFileFailsCleanly) {
  auto table = Reader::FromFile("/nonexistent/parparaw.csv").Read();
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

// --- ParseOptions::Validate, wired into every entry point ---

TEST(ValidateTest, AcceptsDefaults) {
  EXPECT_TRUE(ParseOptions().Validate().ok());
}

TEST(ValidateTest, RejectsNegativeSkips) {
  ParseOptions options;
  options.skip_rows = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.skip_records = {3, -2};
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.skip_columns = {-1};
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = ParseOptions();
  options.memory_budget = -5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsOversizedChunk) {
  ParseOptions options;
  options.chunk_size = size_t{1} << 30;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsInvertedCollaborationThresholds) {
  ParseOptions options;
  options.block_collaboration_threshold = 1 << 20;
  options.device_collaboration_threshold = 256;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsInlineTerminatorCollidingWithDelimiter) {
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  options.terminator = ',';  // the RFC 4180 field delimiter
  const Status status = options.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  options.terminator = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.terminator = 0x1F;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ValidateTest, RejectsValidatePolicyWithQuarantine) {
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  options.error_policy = robust::ErrorPolicy::kQuarantine;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, EveryEntryPointRejectsInvalidOptionsUpFront) {
  ParseOptions bad;
  bad.skip_rows = -1;
  EXPECT_EQ(Parser::Parse("a,b\n", bad).status().code(),
            StatusCode::kInvalidArgument);

  StreamingOptions streaming;
  streaming.base = bad;
  EXPECT_EQ(StreamingParser::Parse("a,b\n", streaming).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace parparaw
