#include <gtest/gtest.h>

#include "core/parser.h"
#include "dfa/formats.h"

namespace parparaw {
namespace {

ParseOptions TypedOptions() {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("price", DataType::Float64()));
  options.schema.AddField(Field("name", DataType::String()));
  return options;
}

TEST(ParserTest, PaperRunningExample) {
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\n";
  auto result = Parser::Parse(input, TypedOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = result->table;
  ASSERT_EQ(table.num_rows, 2);
  ASSERT_EQ(table.num_columns(), 3);
  EXPECT_EQ(table.columns[0].Value<int64_t>(0), 1941);
  EXPECT_EQ(table.columns[0].Value<int64_t>(1), 1938);
  EXPECT_DOUBLE_EQ(table.columns[1].Value<double>(0), 199.99);
  EXPECT_DOUBLE_EQ(table.columns[1].Value<double>(1), 19.99);
  EXPECT_EQ(table.columns[2].StringValue(0), "Bookcase");
  EXPECT_EQ(table.columns[2].StringValue(1), "Frame\n\"Ribba\", black");
  EXPECT_EQ(table.NumRejected(), 0);
}

TEST(ParserTest, EmptyInput) {
  auto result = Parser::Parse("", TypedOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows, 0);
  EXPECT_EQ(result->table.num_columns(), 3);
}

TEST(ParserTest, SingleFieldNoNewline) {
  ParseOptions options;
  options.schema.AddField(Field("v", DataType::String()));
  auto result = Parser::Parse("solo", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "solo");
}

TEST(ParserTest, TrailingRecordWithoutNewline) {
  auto result = Parser::Parse("1,2.5,a\n2,3.5,b", TypedOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[2].StringValue(1), "b");
}

TEST(ParserTest, MalformedNumericYieldsNullAndReject) {
  auto result = Parser::Parse("1,notanumber,a\n", TypedOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->table.columns[1].IsNull(0));
  EXPECT_EQ(result->table.rejected[0], 1);
  EXPECT_EQ(result->table.NumRejected(), 1);
}

TEST(ParserTest, EmptyNumericFieldIsNullWithoutReject) {
  auto result = Parser::Parse("1,,a\n", TypedOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->table.columns[1].IsNull(0));
  EXPECT_EQ(result->table.NumRejected(), 0);
}

TEST(ParserTest, ShortRecordYieldsNullsRobustMode) {
  auto result = Parser::Parse("1,2.5,a\n7\n", TypedOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 7);
  EXPECT_TRUE(result->table.columns[1].IsNull(1));
  EXPECT_TRUE(result->table.columns[2].IsNull(1));
  EXPECT_EQ(result->min_columns, 1u);
  EXPECT_EQ(result->max_columns, 3u);
}

TEST(ParserTest, ExtraFieldsIgnoredRobustMode) {
  auto result = Parser::Parse("1,2.5,a,EXTRA,MORE\n", TypedOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.num_columns(), 3);
  EXPECT_EQ(result->table.columns[2].StringValue(0), "a");
}

TEST(ParserTest, SchemalessColumnsAreStringsWithGeneratedNames) {
  ParseOptions options;
  auto result = Parser::Parse("x,y\nz,w\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_columns(), 2);
  EXPECT_EQ(result->table.schema.field(0).name, "f0");
  EXPECT_TRUE(result->table.schema.field(0).type == DataType::String());
  EXPECT_EQ(result->table.columns[1].StringValue(1), "w");
}

TEST(ParserTest, ValidateRejectsBadInput) {
  ParseOptions options = TypedOptions();
  options.validate = true;
  EXPECT_FALSE(Parser::Parse("a\"b,1,2\n", options).ok());
  EXPECT_FALSE(Parser::Parse("1,2,\"open\n", options).ok());
  EXPECT_TRUE(Parser::Parse("1,2.5,ok\n", options).ok());
}

class ChunkSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeSweep, TableInvariantUnderChunkSize) {
  const std::string input =
      "1941,199.99,\"Bookcase\"\n"
      "1938,19.99,\"Frame\n\"\"Ribba\"\", black\"\n"
      ",,\n"
      "3,0.5,\"trailing\"";
  auto reference = Parser::Parse(input, TypedOptions());
  ASSERT_TRUE(reference.ok());
  ParseOptions options = TypedOptions();
  options.chunk_size = GetParam();
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->table.Equals(reference->table))
      << "chunk size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 31, 32,
                                           64, 4096));

TEST(ParserTest, TaggingModesProduceIdenticalTables) {
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame X\"\n,,\n";
  ParseOptions base = TypedOptions();
  auto tagged = Parser::Parse(input, base);
  ASSERT_TRUE(tagged.ok());

  base.tagging_mode = TaggingMode::kInlineTerminated;
  auto inline_mode = Parser::Parse(input, base);
  ASSERT_TRUE(inline_mode.ok()) << inline_mode.status().ToString();
  EXPECT_TRUE(inline_mode->table.Equals(tagged->table));

  base.tagging_mode = TaggingMode::kVectorDelimited;
  auto vector_mode = Parser::Parse(input, base);
  ASSERT_TRUE(vector_mode.ok());
  EXPECT_TRUE(vector_mode->table.Equals(tagged->table));
}

TEST(ParserTest, CustomDsvFormatTabSeparated) {
  DsvOptions dsv;
  dsv.field_delimiter = '\t';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  options.schema.AddField(Field("a", DataType::Int64()));
  options.schema.AddField(Field("b", DataType::String()));
  auto result = Parser::Parse("1\tx,y\n2\tz\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[1].StringValue(0), "x,y");
}

TEST(ParserTest, CommentsAreSkipped) {
  DsvOptions dsv;
  dsv.comment = '#';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  ParseOptions options;
  options.format = *format;
  auto result =
      Parser::Parse("# a comment, with \"quotes\n1,x\n#another\n2,y\n",
                    options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "1");
  EXPECT_EQ(result->table.columns[0].StringValue(1), "2");
}

TEST(ParserTest, DefaultValuesForEmptyFields) {
  ParseOptions options;
  Field id("id", DataType::Int64());
  id.default_value = "-1";
  Field name("name", DataType::String());
  name.default_value = "unknown";
  options.schema.AddField(id);
  options.schema.AddField(name);
  auto result = Parser::Parse(",\n5,x\n,\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 3);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(0), -1);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 5);
  EXPECT_EQ(result->table.columns[1].StringValue(0), "unknown");
  EXPECT_EQ(result->table.columns[1].StringValue(2), "unknown");
  EXPECT_EQ(result->table.NumRejected(), 0);
}

TEST(ParserTest, TrailingEmptyFieldsOfLastRecordRoundTripToDefaults) {
  // Regression: the trailing empty field of the LAST record — whether the
  // record ends with the final newline or at EOF with no newline at all —
  // must behave like any interior empty field and pick up the column
  // default, in both transpose modes.
  for (TransposeMode mode :
       {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
    ParseOptions options;
    options.transpose_mode = mode;
    options.schema.AddField(Field("a", DataType::String()));
    options.schema.AddField(Field("b", DataType::String()));
    Field c("c", DataType::String());
    c.default_value = "dflt";
    options.schema.AddField(c);
    for (const char* input : {"a,b,\n", "a,b,"}) {
      auto result = Parser::Parse(input, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->table.num_rows, 1) << input;
      EXPECT_EQ(result->table.columns[0].StringValue(0), "a");
      EXPECT_EQ(result->table.columns[1].StringValue(0), "b");
      EXPECT_EQ(result->table.columns[2].StringValue(0), "dflt") << input;
      EXPECT_EQ(result->table.NumRejected(), 0);
    }
  }
}

TEST(ParserTest, LoneDelimiterRecordYieldsAllDefaults) {
  // A record that is nothing but a field delimiter has two empty fields;
  // as the last (or only) record it must still produce one row of
  // defaults, with or without a closing newline.
  for (TransposeMode mode :
       {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
    ParseOptions options;
    options.transpose_mode = mode;
    Field a("a", DataType::String());
    a.default_value = "left";
    Field b("b", DataType::String());
    b.default_value = "right";
    options.schema.AddField(a);
    options.schema.AddField(b);
    for (const char* input : {",\n", ","}) {
      auto result = Parser::Parse(input, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->table.num_rows, 1) << input;
      EXPECT_EQ(result->table.columns[0].StringValue(0), "left") << input;
      EXPECT_EQ(result->table.columns[1].StringValue(0), "right") << input;
      EXPECT_EQ(result->table.NumRejected(), 0);
    }
  }
}

TEST(ParserTest, InvalidDefaultValueFailsParse) {
  ParseOptions options;
  Field id("id", DataType::Int64());
  id.default_value = "not-a-number";
  options.schema.AddField(id);
  EXPECT_FALSE(Parser::Parse(",\n", options).ok());
}

TEST(ParserTest, RemainderOffsetForStreaming) {
  ParseOptions options;
  options.exclude_trailing_record = true;
  {
    auto result = Parser::Parse("a,b\nc,d\npartial", options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.num_rows, 2);
    EXPECT_EQ(result->remainder_offset, 8);  // after "a,b\nc,d\n"
  }
  {
    auto result = Parser::Parse("a,b\nc,d\n", options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.num_rows, 2);
    EXPECT_EQ(result->remainder_offset, 8);  // ends on a boundary
  }
  {
    // Quoted newline must not be mistaken for a boundary.
    auto result = Parser::Parse("a,\"x\ny\nz", options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.num_rows, 0);
    EXPECT_EQ(result->remainder_offset, 0);
  }
}

TEST(ParserTest, Utf8MultiByteContent) {
  ParseOptions options;
  options.chunk_size = 3;  // boundaries inside multi-byte sequences
  auto result = Parser::Parse("héllo,wörld\n€42,日本語\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "héllo");
  EXPECT_EQ(result->table.columns[1].StringValue(0), "wörld");
  EXPECT_EQ(result->table.columns[0].StringValue(1), "€42");
  EXPECT_EQ(result->table.columns[1].StringValue(1), "日本語");
}

TEST(ParserTest, Utf16InputTranscodedAndParsed) {
  // "1,a\n2,b\n" as UTF-16LE bytes.
  const std::string utf8 = "1,a\n2,b\n";
  std::string utf16;
  for (char c : utf8) {
    utf16.push_back(c);
    utf16.push_back('\0');
  }
  ParseOptions options;
  options.encoding = TextEncoding::kUtf16Le;
  auto result = Parser::Parse(utf16, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[1].StringValue(1), "b");
}

TEST(ParserTest, Utf16SurrogatePairsInQuotedFields) {
  // "id,😀text\n" in UTF-16LE, with the emoji inside a quoted field that
  // also contains a delimiter.
  auto unit = [](std::string* out, uint16_t u) {
    out->push_back(static_cast<char>(u & 0xFF));
    out->push_back(static_cast<char>(u >> 8));
  };
  std::string utf16;
  for (char c : std::string("7,\"")) unit(&utf16, static_cast<uint8_t>(c));
  unit(&utf16, 0xD83D);  // 😀 high surrogate
  unit(&utf16, 0xDE00);  // 😀 low surrogate
  for (char c : std::string(",x\"\n")) unit(&utf16, static_cast<uint8_t>(c));
  ParseOptions options;
  options.encoding = TextEncoding::kUtf16Le;
  options.chunk_size = 3;  // boundaries inside the transcoded sequence
  auto result = Parser::Parse(utf16, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 1);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "7");
  EXPECT_EQ(result->table.columns[1].StringValue(0),
            "\xF0\x9F\x98\x80,x");
}

TEST(ParserTest, CollapsedSymbolGroupsViaBuilder) {
  // Table 1 collapses symbols with identical transitions into one group:
  // both ';' and '|' delimit fields here through a shared group.
  DfaBuilder b;
  const int rec = b.AddState("REC", true);
  const int g_nl = b.AddSymbol('\n');
  const int g_delim = b.AddSymbol(';');
  b.AddSymbolToGroup('|', g_delim);
  b.SetTransition(rec, g_nl, rec, kSymbolRecordDelimiter | kSymbolControl);
  b.SetTransition(rec, g_delim, rec,
                  kSymbolFieldDelimiter | kSymbolControl);
  b.SetDefaultTransition(rec, rec, kSymbolData);
  auto dfa = b.Build();
  ASSERT_TRUE(dfa.ok()) << dfa.status().ToString();
  EXPECT_EQ(dfa->SymbolGroup(';'), dfa->SymbolGroup('|'));

  Format format;
  format.dfa = *dfa;
  format.record_delimiter = '\n';
  format.field_delimiter = ';';
  format.mid_record_state_mask = 1u << rec;
  ParseOptions options;
  options.format = format;
  // No trailing newline: the single-state DFA cannot distinguish "just
  // after a delimiter" from "mid-record", so a trailing '\n' would add an
  // empty trailing record under the coarse mid-record mask above.
  auto result = Parser::Parse("a;b|c\nd|e;f", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_columns(), 3);
  EXPECT_EQ(result->table.columns[1].StringValue(0), "b");
  EXPECT_EQ(result->table.columns[2].StringValue(1), "f");
}

TEST(ParserTest, WorkCountersPopulated) {
  auto result = Parser::Parse("1,2.5,a\n", TypedOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->work.input_bytes, 8);
  EXPECT_EQ(result->work.dfa_transitions, 8 * 6);
  EXPECT_GT(result->work.output_bytes, 0);
  EXPECT_GE(result->work.sort_passes, 1);
}

}  // namespace
}  // namespace parparaw
