#include <gtest/gtest.h>

#include "baseline/sequential_parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(WorkloadTest, YelpLikeIsDeterministic) {
  EXPECT_EQ(GenerateYelpLike(1, 8192), GenerateYelpLike(1, 8192));
  EXPECT_NE(GenerateYelpLike(1, 8192), GenerateYelpLike(2, 8192));
}

TEST(WorkloadTest, YelpLikeMatchesPublishedShape) {
  const std::string data = GenerateYelpLike(7, 256 * 1024);
  EXPECT_GE(data.size(), 256u * 1024);
  ParseOptions options;
  options.schema = YelpSchema();
  options.validate = true;  // RFC 4180 conformant
  auto result = SequentialParser::Parse(data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& table = result->table;
  ASSERT_EQ(table.num_columns(), 9);
  EXPECT_EQ(table.NumRejected(), 0);
  // Average record size in the paper's ballpark (721.4 B/record; accept a
  // generous band for the synthetic stand-in).
  const double avg = static_cast<double>(data.size()) / table.num_rows;
  EXPECT_GT(avg, 250.0);
  EXPECT_LT(avg, 2000.0);
  // The text column must contain embedded delimiters somewhere.
  bool has_comma = false;
  bool has_newline = false;
  bool has_quote = false;
  for (int64_t r = 0; r < table.num_rows; ++r) {
    const auto text = table.columns[7].StringValue(r);
    has_comma |= text.find(',') != std::string_view::npos;
    has_newline |= text.find('\n') != std::string_view::npos;
    has_quote |= text.find('"') != std::string_view::npos;
  }
  EXPECT_TRUE(has_comma);
  EXPECT_TRUE(has_newline);
  EXPECT_TRUE(has_quote);
  // stars is a valid 1-5 integer everywhere.
  for (int64_t r = 0; r < table.num_rows; ++r) {
    ASSERT_FALSE(table.columns[3].IsNull(r));
    const int64_t stars = table.columns[3].Value<int64_t>(r);
    ASSERT_GE(stars, 1);
    ASSERT_LE(stars, 5);
  }
}

TEST(WorkloadTest, TaxiLikeMatchesPublishedShape) {
  const std::string data = GenerateTaxiLike(7, 128 * 1024);
  ParseOptions options;
  options.schema = TaxiSchema();
  options.validate = true;
  auto result = SequentialParser::Parse(data, options);
  ASSERT_TRUE(result.ok());
  const Table& table = result->table;
  ASSERT_EQ(table.num_columns(), 17);
  EXPECT_EQ(table.NumRejected(), 0);
  // ~88.3 B/record, ~5.2 B/field in the paper.
  const double avg = static_cast<double>(data.size()) / table.num_rows;
  EXPECT_GT(avg, 60.0);
  EXPECT_LT(avg, 140.0);
  // Totals are consistent (fare + surcharges ≈ total) for row 0.
  const double total = table.columns[16].Value<double>(0);
  const double fare = table.columns[10].Value<double>(0);
  EXPECT_GT(total, fare);
}

TEST(WorkloadTest, SkewedContainsGiantRecord) {
  const std::string data =
      GenerateSkewed(5, 64 * 1024, /*giant_field_bytes=*/100 * 1024,
                     /*yelp_like=*/true);
  ParseOptions options;
  options.schema = YelpSchema();
  auto result = SequentialParser::Parse(data, options);
  ASSERT_TRUE(result.ok());
  int64_t longest = 0;
  for (int64_t r = 0; r < result->table.num_rows; ++r) {
    longest = std::max<int64_t>(
        longest,
        static_cast<int64_t>(result->table.columns[7].StringValue(r).size()));
  }
  EXPECT_GE(longest, 90 * 1024);
}

TEST(WorkloadTest, SkewedTaxiKeepsSchema) {
  const std::string data =
      GenerateSkewed(5, 32 * 1024, /*giant_field_bytes=*/50 * 1024,
                     /*yelp_like=*/false);
  ParseOptions options;
  options.schema = TaxiSchema();
  options.column_count_policy = ColumnCountPolicy::kValidate;
  auto result = SequentialParser::Parse(data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(WorkloadTest, RandomCsvRespectsTrailingNewlineOption) {
  RandomCsvOptions gen;
  gen.num_records = 10;
  gen.trailing_newline = false;
  const std::string without = GenerateRandomCsv(1, gen);
  EXPECT_NE(without.back(), '\n');
  gen.trailing_newline = true;
  const std::string with = GenerateRandomCsv(1, gen);
  EXPECT_EQ(with.back(), '\n');
}

TEST(WorkloadTest, RandomCsvValidRfc4180) {
  RandomCsvOptions gen;
  gen.num_records = 200;
  ParseOptions options;
  options.validate = true;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const std::string input = GenerateRandomCsv(seed, gen);
    auto result = SequentialParser::Parse(input, options);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
  }
}

TEST(WorkloadTest, LogLikeParsesUnderExtendedLogFormat) {
  auto format = ExtendedLogFormat();
  ASSERT_TRUE(format.ok());
  const std::string data = GenerateLogLike(3, 16 * 1024);
  ParseOptions options;
  options.format = *format;
  auto result = SequentialParser::Parse(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->table.num_rows, 50);
  EXPECT_EQ(result->table.num_columns(), 6);
}

}  // namespace
}  // namespace parparaw
