// Loopback soak and multi-tenancy suite for parparawd (src/serve).
//
// Built to run under TSan (scripts/check.sh serve): N concurrent clients
// mix uploads, queries, streaming parses and abrupt disconnects against
// one daemon. Asserts the three serving invariants:
//   1. every served result is bit-identical to a direct Reader parse;
//   2. queue-depth shedding answers BUSY deterministically at the
//      admission limit and the connection stays usable;
//   3. cancel-on-disconnect releases every admission slot — the shared
//      exec controller and the request semaphore both drain to zero, and
//      the serve.inflight_requests gauge follows.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "api/reader.h"
#include "obs/metrics.h"
#include "query/pushdown.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_io.h"
#include "workload/generators.h"
#include "workload/request_stream.h"

namespace parparaw {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Polls `cond` for up to `limit_ms`; true when it became true.
bool WaitFor(const std::function<bool()>& cond, int limit_ms) {
  const auto deadline = steady_clock::now() + milliseconds(limit_ms);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return cond();
}

struct Dataset {
  std::string bytes;
  Table expected;
  Table query_expected;
  int64_t query_scanned = 0;
  int64_t query_selected = 0;
};

Predicate SoakPredicate() { return Predicate(0, CompareOp::kIsNotNull); }

std::vector<Dataset> MakeDatasets() {
  std::vector<Dataset> datasets;
  std::vector<std::string> raw = {
      GenerateYelpLike(1, 32 * 1024),
      GenerateTaxiLike(2, 32 * 1024),
      GenerateLineitemLike(3, 32 * 1024),
      GenerateTaxiLike(4, 48 * 1024),
  };
  for (std::string& bytes : raw) {
    Dataset dataset;
    dataset.bytes = std::move(bytes);
    auto expected = Reader::FromBuffer(dataset.bytes).Read();
    EXPECT_TRUE(expected.ok()) << expected.status().ToString();
    dataset.expected = std::move(*expected);

    LoadOptions load;
    load.collect_statistics = false;
    LoadResult resolution;
    auto base =
        BulkLoader::ResolveBaseOptions(dataset.bytes, false, load, &resolution);
    EXPECT_TRUE(base.ok());
    base->column_count_policy = ColumnCountPolicy::kRobust;
    PushdownStats stats;
    auto query = ParseWithPushdown(dataset.bytes, *base, SoakPredicate(),
                                   &stats);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    dataset.query_expected = std::move(query->table);
    dataset.query_scanned = stats.records_scanned;
    dataset.query_selected = stats.records_selected;
    datasets.push_back(std::move(dataset));
  }
  return datasets;
}

TEST(ServeConcurrencyTest, SoakMixedClientsBitIdentical) {
  obs::MetricsRegistry metrics;
  ServeOptions options;
  options.max_inflight_requests = 4;
  options.memory_budget = 64 * 1024 * 1024;
  options.partition_size = 16 * 1024;
  options.metrics = &metrics;
  options.watchdog_interval_ms = 1;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::vector<Dataset> datasets = MakeDatasets();
  ASSERT_FALSE(::testing::Test::HasFailure());

  constexpr int kWorkers = 6;
  constexpr int kIterations = 20;
  std::atomic<int> busy_retries{0};
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kWorkers);

  auto worker = [&](int id) {
    RequestStream::Options stream_options;
    stream_options.seed = 1000 + id;
    stream_options.num_datasets = datasets.size();
    RequestStream stream(stream_options);
    auto fail = [&](const std::string& what) {
      errors[id] = what;
      failures.fetch_add(1);
    };
    for (int i = 0; i < kIterations; ++i) {
      const Request request = stream.Next();
      const Dataset& dataset = datasets[request.dataset];
      auto client = Client::Connect(*port);
      if (!client.ok()) return fail(client.status().ToString());

      if (request.kind == RequestKind::kPing) {
        const Status pinged = client->Ping();
        if (!pinged.ok()) return fail(pinged.ToString());
        continue;
      }
      // Abrupt-disconnect mix: fire a parse and vanish mid-request.
      if (i % 7 == 3) {
        RequestOptions abandoned;
        abandoned.partition_size = 4 * 1024;
        std::string payload =
            EncodeRequestHeader(RequestHeader{});
        payload.append(dataset.bytes);
        std::string frame;
        AppendFrame(Opcode::kParseBuffer, 0, payload, &frame);
        (void)SendAll(client->fd(), frame);
        client->Close();
        continue;
      }

      if (request.kind == RequestKind::kQuery) {
        for (int attempt = 0; attempt < 50; ++attempt) {
          auto reply = client->Query(dataset.bytes, SoakPredicate());
          if (!reply.ok()) return fail(reply.status().ToString());
          if (reply->busy) {
            busy_retries.fetch_add(1);
            std::this_thread::sleep_for(milliseconds(2));
            continue;
          }
          if (reply->records_scanned != dataset.query_scanned ||
              reply->records_selected != dataset.query_selected ||
              !reply->table.Equals(dataset.query_expected)) {
            return fail("query result diverged from local pushdown");
          }
          break;
        }
        continue;
      }

      RequestOptions parse_options;
      parse_options.stream = request.kind == RequestKind::kStreamParse;
      if (parse_options.stream) parse_options.partition_size = 8 * 1024;
      for (int attempt = 0; attempt < 50; ++attempt) {
        auto reply = client->Parse(dataset.bytes, parse_options);
        if (!reply.ok()) return fail(reply.status().ToString());
        if (reply->busy) {
          busy_retries.fetch_add(1);
          std::this_thread::sleep_for(milliseconds(2));
          continue;
        }
        if (parse_options.stream) {
          int64_t rows = 0;
          for (const Table& part : reply->parts) rows += part.num_rows;
          if (rows != dataset.expected.num_rows) {
            return fail("streamed row count diverged");
          }
        } else if (!reply->table.Equals(dataset.expected)) {
          return fail("served table diverged from local Reader");
        }
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int id = 0; id < kWorkers; ++id) threads.emplace_back(worker, id);
  for (std::thread& thread : threads) thread.join();

  for (int id = 0; id < kWorkers; ++id) {
    EXPECT_TRUE(errors[id].empty()) << "worker " << id << ": " << errors[id];
  }
  EXPECT_EQ(failures.load(), 0);

  // Slot-leak check: every admission slot (request semaphore AND the
  // shared exec partition controller) must drain once the storm ends —
  // including the slots held by the abandoned-disconnect requests.
  EXPECT_TRUE(WaitFor([&] { return server.inflight_requests() == 0; }, 10000));
  EXPECT_TRUE(
      WaitFor([&] { return server.exec_admission()->inflight() == 0; }, 10000));
  EXPECT_TRUE(WaitFor(
      [&] {
        obs::Gauge* gauge = metrics.GetGauge("serve.inflight_requests");
        return gauge == nullptr || gauge->Value() == 0;
      },
      10000));

  const ServerStats stats = server.stats();
  EXPECT_GT(stats.requests, 0);
  server.Stop();
}

TEST(ServeConcurrencyTest, BusyShedIsDeterministicAtQueueDepthLimit) {
  ServeOptions options;
  options.max_inflight_requests = 2;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Occupy the whole queue depth from the outside.
  ASSERT_GT(server.request_admission()->TryAcquire(2), 0);
  ASSERT_GT(server.request_admission()->TryAcquire(2), 0);
  ASSERT_EQ(server.request_admission()->TryAcquire(2), -1);

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  auto reply = client->Parse("a,b\n1,2\n");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->busy);
  EXPECT_GE(server.stats().busy_shed, 1);
  // BUSY is shedding, not punishment: the connection still works, and
  // ping (no admission needed) answers even at the limit.
  EXPECT_TRUE(client->Ping().ok());

  server.request_admission()->Release(2);
  auto retry = client->Parse("a,b\n1,2\n");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->busy);
  EXPECT_EQ(retry->table.num_rows, 1);
  server.Stop();
}

TEST(ServeConcurrencyTest, ConnectionCapShedsWithBusyFrame) {
  ServeOptions options;
  options.max_connections = 1;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto first = Client::Connect(*port);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Ping().ok());  // fully established

  auto second = ConnectLoopback(*port);
  ASSERT_TRUE(second.ok());
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(second->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kBusy);
  // ... and the daemon closed it.
  std::string rest;
  bool eof = false;
  ASSERT_TRUE(RecvExact(second->fd(), 1, &rest, &eof).ok());
  EXPECT_TRUE(eof);

  // Freeing the slot restores service.
  first->Close();
  EXPECT_TRUE(WaitFor(
      [&] {
        auto retry = Client::Connect(*port);
        return retry.ok() && retry->Ping().ok();
      },
      5000));
  server.Stop();
}

TEST(ServeConcurrencyTest, CancelOnDisconnectReleasesAdmissionSlots) {
  obs::MetricsRegistry metrics;
  ServeOptions options;
  options.metrics = &metrics;
  options.watchdog_interval_ms = 1;
  options.partition_size = 8 * 1024;  // long-running: many partitions
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string big = GenerateTaxiLike(99, 2 * 1024 * 1024);
  std::string payload = EncodeRequestHeader(RequestHeader{});
  payload.append(big);
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, 0, payload, &frame);

  for (int round = 0; round < 3; ++round) {
    auto sock = ConnectLoopback(*port);
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(SendAll(sock->fd(), frame).ok());
    sock->Close();  // vanish without reading a byte of the response
  }

  // The watchdog must notice each disconnect and cancel the executor.
  EXPECT_TRUE(WaitFor(
      [&] { return server.stats().cancelled_disconnects >= 3; }, 15000))
      << "cancelled " << server.stats().cancelled_disconnects << " of 3";
  // Cancelled requests return every slot they held.
  EXPECT_TRUE(WaitFor([&] { return server.inflight_requests() == 0; }, 10000));
  EXPECT_TRUE(
      WaitFor([&] { return server.exec_admission()->inflight() == 0; }, 10000));
  EXPECT_TRUE(WaitFor(
      [&] {
        obs::Gauge* gauge = metrics.GetGauge("serve.inflight_requests");
        return gauge != nullptr && gauge->Value() == 0;
      },
      10000));

  // The daemon serves the same bytes correctly afterwards.
  auto expected = Reader::FromBuffer(big).Read();
  ASSERT_TRUE(expected.ok());
  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  auto reply = client->Parse(big);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  server.Stop();
}

TEST(ServeConcurrencyTest, StopWhileRequestsInFlightJoinsCleanly) {
  ServeOptions options;
  options.partition_size = 8 * 1024;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string big = GenerateYelpLike(5, 1024 * 1024);
  std::string payload = EncodeRequestHeader(RequestHeader{});
  payload.append(big);
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, 0, payload, &frame);

  std::vector<Result<Socket>> socks;
  for (int i = 0; i < 4; ++i) {
    socks.push_back(ConnectLoopback(*port));
    ASSERT_TRUE(socks.back().ok());
    ASSERT_TRUE(SendAll(socks.back()->fd(), frame).ok());
  }
  // Stop with the parses mid-flight: must cancel, join, not hang.
  server.Stop();
  EXPECT_EQ(server.exec_admission()->inflight(), 0);
  EXPECT_EQ(server.inflight_requests(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace parparaw
