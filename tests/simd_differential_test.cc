#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/parser.h"
#include "dfa/formats.h"
#include "dialect/dialect.h"
#include "simd/dispatch.h"
#include "simd/simd_kernels.h"
#include "text/unicode.h"
#include "test_util.h"
#include "workload/generators.h"

// Differential harness for the src/simd kernels: every vectorized dispatch
// level must produce bit-identical pipeline state to the scalar reference
// on arbitrary inputs. The scalar path is the ground truth (it predates the
// SIMD subsystem and is covered by the rest of the suite); each available
// level — portable SWAR, SSE4.2, AVX2, NEON — is forced explicitly via the
// SetForcedKernelLevel() test hook and compared field by field.

namespace parparaw {
namespace {

using simd::KernelLevel;

/// Forces a kernel level for the current scope; restores normal resolution
/// on destruction so a failing ASSERT cannot leak the override into later
/// tests.
class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(KernelLevel level) {
    simd::SetForcedKernelLevel(level);
  }
  ~ScopedKernelLevel() { simd::SetForcedKernelLevel(std::nullopt); }
};

/// Every level beyond the scalar reference that this build + CPU can run.
/// kSwar is always available; arch levels depend on the translation units
/// compiled in (PARPARAW_DISABLE_SIMD) and the runtime CPU check.
std::vector<KernelLevel> AvailableVectorLevels() {
  std::vector<KernelLevel> levels = {KernelLevel::kSwar};
  for (KernelLevel level :
       {KernelLevel::kSse42, KernelLevel::kAvx2, KernelLevel::kNeon}) {
    if (simd::KernelLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

/// Everything the context and bitmap steps produce that later steps (and
/// the final table) depend on.
struct PipelineSnapshot {
  std::vector<StateVector> transition_vectors;
  std::vector<uint8_t> entry_states;
  uint8_t final_state = 0;
  bool has_trailing_record = false;
  SymbolFlagsArray symbol_flags;
  std::vector<uint32_t> record_counts;
  std::vector<ColumnOffset> column_offsets;
  int64_t first_invalid_offset = -1;
};

PipelineSnapshot SnapshotThroughBitmaps(const std::string& input,
                                        const ParseOptions& options) {
  auto harness = StepHarness::Make(input, options);
  EXPECT_NE(harness, nullptr);
  PipelineSnapshot snap;
  if (harness == nullptr) return snap;
  const Status status = harness->RunThroughBitmaps();
  EXPECT_TRUE(status.ok()) << status.ToString();
  snap.transition_vectors = harness->state.transition_vectors;
  snap.entry_states = harness->state.entry_states;
  snap.final_state = harness->state.final_state;
  snap.has_trailing_record = harness->state.has_trailing_record;
  snap.symbol_flags = harness->state.symbol_flags;
  snap.record_counts = harness->state.record_counts;
  snap.column_offsets = harness->state.column_offsets;
  snap.first_invalid_offset = harness->state.first_invalid_offset;
  return snap;
}

std::string VectorToString(const StateVector& v) {
  std::string out = "[";
  for (int s = 0; s < v.size(); ++s) {
    if (s > 0) out += ' ';
    out += std::to_string(v.Get(s));
  }
  return out + "]";
}

/// Asserts that `got` (a vectorized level) matches `want` (scalar) exactly.
void ExpectSnapshotsEqual(const PipelineSnapshot& want,
                          const PipelineSnapshot& got,
                          const std::string& context) {
  ASSERT_EQ(want.transition_vectors.size(), got.transition_vectors.size())
      << context;
  for (size_t c = 0; c < want.transition_vectors.size(); ++c) {
    ASSERT_TRUE(want.transition_vectors[c] == got.transition_vectors[c])
        << context << " chunk " << c << ": transition vector mismatch ("
        << VectorToString(want.transition_vectors[c]) << " vs "
        << VectorToString(got.transition_vectors[c]) << ")";
  }
  ASSERT_EQ(want.entry_states, got.entry_states) << context;
  ASSERT_EQ(want.final_state, got.final_state) << context;
  ASSERT_EQ(want.has_trailing_record, got.has_trailing_record) << context;
  ASSERT_EQ(want.symbol_flags.size(), got.symbol_flags.size()) << context;
  for (size_t i = 0; i < want.symbol_flags.size(); ++i) {
    ASSERT_EQ(want.symbol_flags[i], got.symbol_flags[i])
        << context << " byte " << i << ": symbol flag mismatch";
  }
  ASSERT_EQ(want.record_counts, got.record_counts) << context;
  ASSERT_EQ(want.column_offsets.size(), got.column_offsets.size()) << context;
  for (size_t c = 0; c < want.column_offsets.size(); ++c) {
    ASSERT_EQ(want.column_offsets[c].value, got.column_offsets[c].value)
        << context << " chunk " << c;
    ASSERT_EQ(want.column_offsets[c].absolute, got.column_offsets[c].absolute)
        << context << " chunk " << c;
  }
  ASSERT_EQ(want.first_invalid_offset, got.first_invalid_offset) << context;
}

struct NamedFormat {
  std::string name;
  Format format;
};

/// Every registered format family: the paper's RFC 4180 DFA, DSV variants
/// covering pipes/TSV/comments/CR/escapes, and the Extended Log Format.
std::vector<NamedFormat> RegisteredFormats() {
  std::vector<NamedFormat> formats;
  auto add = [&formats](const std::string& name, Result<Format> format) {
    ASSERT_TRUE(format.ok()) << name << ": " << format.status().ToString();
    formats.push_back({name, *std::move(format)});
  };
  add("rfc4180", Rfc4180Format());
  {
    DsvOptions pipe;
    pipe.field_delimiter = '|';
    add("pipe", DsvFormat(pipe));
  }
  {
    DsvOptions tsv;
    tsv.field_delimiter = '\t';
    tsv.escape = '\\';
    tsv.strict_quotes = false;
    add("tsv_escape", DsvFormat(tsv));
  }
  {
    DsvOptions commented;
    commented.comment = '#';
    commented.skip_empty_lines = true;
    commented.ignore_carriage_return = true;
    add("comment_cr", DsvFormat(commented));
  }
  add("extended_log", ExtendedLogFormat());
  return formats;
}

/// Deterministic xorshift for input mutation (seeded, reproducible).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

 private:
  uint64_t state_;
};

/// Sprinkles multibyte UTF-8 sequences into an input so the chunk-boundary
/// AdjustBegin logic runs on every level. The result may not be valid for
/// the format — irrelevant for a differential test, every level sees the
/// same bytes.
std::string InjectUtf8(std::string input, uint64_t seed) {
  static const char* const kSamples[] = {"é", "→", "𝛑", "汉", "ß", "🚀"};
  Rng rng(seed);
  const int injections = 1 + static_cast<int>(rng.Next() % 6);
  for (int i = 0; i < injections; ++i) {
    const size_t pos = input.empty() ? 0 : rng.Next() % input.size();
    input.insert(pos, kSamples[rng.Next() % 6]);
  }
  return input;
}

/// Purely random bytes: exercises invalid transitions, never-converging
/// state vectors, and symbols outside every symbol group.
std::string RandomBytes(uint64_t seed, size_t size) {
  Rng rng(seed);
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>(rng.Next() & 0xFF);
  }
  return out;
}

std::string InputForSeed(const NamedFormat& format, uint64_t seed) {
  const uint64_t category = seed % 8;
  if (category == 6) return RandomBytes(seed, 64 + seed % 512);
  if (format.name == "extended_log") {
    std::string input = GenerateLogLike(seed, 256 + seed % 512);
    if (category == 7) return InjectUtf8(std::move(input), seed);
    return input;
  }
  RandomCsvOptions options;
  options.num_records = 3 + static_cast<int>(seed % 20);
  options.num_columns = 1 + static_cast<int>(seed % 7);
  options.quote_probability = (seed % 5) * 0.2;
  options.embedded_delimiter_probability = (seed % 3) * 0.3;
  options.escaped_quote_probability = (seed % 4) * 0.25;
  options.ragged_probability = (seed % 2) * 0.3;
  options.trailing_newline = (seed % 3) != 0;
  std::string input = GenerateRandomCsv(seed, options);
  if (format.format.field_delimiter != ',') {
    for (char& ch : input) {
      if (ch == ',') ch = static_cast<char>(format.format.field_delimiter);
    }
  }
  if (category == 7) return InjectUtf8(std::move(input), seed);
  return input;
}

size_t ChunkSizeForSeed(uint64_t seed) {
  static const size_t kChunkSizes[] = {1, 2, 3, 5, 7, 16, 31, 64};
  return kChunkSizes[seed % 8];
}

// The headline sweep: >= 10k seeded inputs, every registered format, every
// available dispatch level compared byte-for-byte against scalar.
TEST(SimdDifferentialTest, AllLevelsMatchScalarOnSeededInputs) {
  const std::vector<KernelLevel> levels = AvailableVectorLevels();
  ASSERT_FALSE(levels.empty());
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  // 2048 seeds x 5 formats = 10240 distinct inputs.
  constexpr uint64_t kSeedsPerFormat = 2048;
  for (const NamedFormat& format : formats) {
    for (uint64_t seed = 0; seed < kSeedsPerFormat; ++seed) {
      const std::string input = InputForSeed(format, seed);
      ParseOptions options;
      options.format = format.format;
      options.chunk_size = ChunkSizeForSeed(seed);

      PipelineSnapshot reference;
      {
        ScopedKernelLevel force(KernelLevel::kScalar);
        reference = SnapshotThroughBitmaps(input, options);
      }
      for (KernelLevel level : levels) {
        ScopedKernelLevel force(level);
        const PipelineSnapshot got = SnapshotThroughBitmaps(input, options);
        const std::string context = format.name + " seed " +
                                    std::to_string(seed) + " level " +
                                    simd::KernelLevelName(level);
        ASSERT_NO_FATAL_FAILURE(ExpectSnapshotsEqual(reference, got, context));
      }
    }
  }
}

// End-to-end differential: the final tables (not just the intermediate
// bitmaps) are identical for every level, across tagging modes and column
// count policies.
TEST(SimdDifferentialTest, FinalTablesMatchScalar) {
  const std::vector<KernelLevel> levels = AvailableVectorLevels();
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (const NamedFormat& format : formats) {
    if (format.name == "extended_log") continue;  // covered by the sweep
    for (uint64_t seed = 0; seed < 64; ++seed) {
      const std::string input = InputForSeed(format, seed * 13 + 1);
      ParseOptions options;
      options.format = format.format;
      options.chunk_size = ChunkSizeForSeed(seed);
      options.tagging_mode = static_cast<TaggingMode>(seed % 3);
      if (options.tagging_mode != TaggingMode::kRecordTags) {
        options.column_count_policy = ColumnCountPolicy::kReject;
      }

      Result<ParseOutput> reference = [&] {
        ScopedKernelLevel force(KernelLevel::kScalar);
        return Parser::Parse(input, options);
      }();
      for (KernelLevel level : levels) {
        ScopedKernelLevel force(level);
        Result<ParseOutput> got = Parser::Parse(input, options);
        const std::string context = format.name + " seed " +
                                    std::to_string(seed) + " level " +
                                    simd::KernelLevelName(level);
        ASSERT_EQ(reference.ok(), got.ok()) << context;
        if (!reference.ok()) continue;
        ASSERT_TRUE(reference->table.Equals(got->table)) << context;
        ASSERT_EQ(reference->min_columns, got->min_columns) << context;
        ASSERT_EQ(reference->max_columns, got->max_columns) << context;
        ASSERT_EQ(reference->records_dropped, got->records_dropped) << context;
      }
    }
  }
}

// Validation must fire identically: same ParseError offsets whether the
// invalid transition is found by the scalar walk, the fused converged
// phase, or the bitmap step's head walk.
TEST(SimdDifferentialTest, ValidationFailuresMatchScalar) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  const NamedFormat& rfc = formats[0];
  for (uint64_t seed = 0; seed < 256; ++seed) {
    // Quote dropped into an unquoted field: strict RFC 4180 invalid input.
    std::string input = InputForSeed(rfc, seed);
    Rng rng(seed + 77);
    if (!input.empty()) input[rng.Next() % input.size()] = '"';
    ParseOptions options;
    options.format = rfc.format;
    options.chunk_size = ChunkSizeForSeed(seed);
    options.validate = true;

    Result<ParseOutput> reference = [&] {
      ScopedKernelLevel force(KernelLevel::kScalar);
      return Parser::Parse(input, options);
    }();
    for (KernelLevel level : AvailableVectorLevels()) {
      ScopedKernelLevel force(level);
      Result<ParseOutput> got = Parser::Parse(input, options);
      const std::string context =
          "seed " + std::to_string(seed) + " level " +
          simd::KernelLevelName(level);
      ASSERT_EQ(reference.ok(), got.ok()) << context;
      if (!reference.ok()) {
        // Identical first-invalid offset implies identical message.
        ASSERT_EQ(reference.status().ToString(), got.status().ToString())
            << context;
      }
    }
  }
}

// Generated-dialect axis: seeded random DialectSpecs (src/dialect) whose
// compiled formats drive the same per-level sweep — the SIMD kernels must
// be bit-identical to scalar on runtime-compiled DFAs (multi-byte record
// delimiters, backslash escapes, fixed-width inclusive boundaries), not
// just on the hand-written built-ins. PARPARAW_DIALECT_SEEDS overrides the
// seed count (default 48) for deeper sweeps (scripts/check.sh dialects).
dialect::DialectSpec DialectSpecForSeed(uint64_t seed) {
  Rng rng(seed * 257 + 11);
  dialect::DialectSpec spec;
  spec.name = "gen-" + std::to_string(seed);
  if (rng.Next() % 4 == 0) {
    const int fields = 1 + static_cast<int>(rng.Next() % 3);
    for (int f = 0; f < fields; ++f) {
      spec.fixed_widths.push_back(1 + static_cast<int>(rng.Next() % 4));
    }
    spec.quote = 0;
    return spec;
  }
  static const uint8_t kFieldDelims[] = {',', ';', '\t', '|'};
  static const char* const kRecordDelims[] = {"\n", "\r\n", "%$"};
  spec.field_delimiter = kFieldDelims[rng.Next() % 4];
  spec.record_delimiter = kRecordDelims[rng.Next() % 3];
  spec.quote = (rng.Next() % 4 == 0) ? 0 : '"';
  spec.escape_style = (rng.Next() % 2 == 0)
                          ? dialect::EscapeStyle::kDoubledQuote
                          : dialect::EscapeStyle::kBackslash;
  spec.comment = (rng.Next() % 3 == 0) ? '#' : 0;
  spec.skip_empty_lines = rng.Next() % 2 == 0;
  spec.strict_quotes = rng.Next() % 2 == 0;
  return spec;
}

std::string DialectInputForSeed(const dialect::DialectSpec& spec,
                                uint64_t seed) {
  Rng rng(seed + 5);
  if (!spec.fixed_widths.empty()) {
    int64_t width = 0;
    for (int w : spec.fixed_widths) width += w;
    std::string input;
    const int records = 4 + static_cast<int>(seed % 12);
    for (int r = 0; r < records; ++r) {
      for (int64_t i = 0; i < width; ++i) {
        input.push_back(static_cast<char>('a' + rng.Next() % 26));
      }
      // A few broken records exercise the trap state across levels.
      if (rng.Next() % 7 == 0) input.pop_back();
      input += spec.record_delimiter;
    }
    return input;
  }
  std::string input = InputForSeed({spec.name, Format{}}, seed);
  if (spec.field_delimiter != ',' && spec.field_delimiter != 0) {
    for (char& ch : input) {
      if (ch == ',') ch = static_cast<char>(spec.field_delimiter);
    }
  }
  if (spec.record_delimiter != "\n") {
    std::string rewritten;
    rewritten.reserve(input.size() * 2);
    for (char ch : input) {
      if (ch == '\n') {
        rewritten += spec.record_delimiter;
      } else {
        rewritten.push_back(ch);
      }
    }
    input = std::move(rewritten);
  }
  return input;
}

TEST(SimdDifferentialTest, GeneratedDialectsMatchScalarAcrossLevels) {
  const std::vector<KernelLevel> levels = AvailableVectorLevels();
  const char* env = std::getenv("PARPARAW_DIALECT_SEEDS");
  const uint64_t seeds =
      env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 10) : 48;
  int swept = 0;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    const dialect::DialectSpec spec = DialectSpecForSeed(seed);
    auto compiled = dialect::Compile(spec);
    ASSERT_TRUE(compiled.ok()) << spec.name << ": "
                               << compiled.status().ToString();
    if (!compiled->within_budget) continue;  // no SIMD path to compare
    const std::string input = DialectInputForSeed(spec, seed);
    ParseOptions options;
    options.dialect = spec;
    options.chunk_size = ChunkSizeForSeed(seed);

    Result<ParseOutput> reference = [&] {
      ScopedKernelLevel force(KernelLevel::kScalar);
      return Parser::Parse(input, options);
    }();
    for (KernelLevel level : levels) {
      ScopedKernelLevel force(level);
      Result<ParseOutput> got = Parser::Parse(input, options);
      const std::string context = spec.name + " level " +
                                  simd::KernelLevelName(level);
      ASSERT_EQ(reference.ok(), got.ok()) << context;
      if (!reference.ok()) {
        ASSERT_EQ(reference.status().ToString(), got.status().ToString())
            << context;
        continue;
      }
      ASSERT_TRUE(reference->table.Equals(got->table)) << context;
      ASSERT_EQ(reference->min_columns, got->min_columns) << context;
      ASSERT_EQ(reference->max_columns, got->max_columns) << context;
    }
    ++swept;
  }
  EXPECT_GT(swept, static_cast<int>(seeds / 2));
}

// Planner axis: a planned parse (every knob at its auto sentinel, knobs
// decided from the input's own prefix) must be bit-identical to the
// planner-disabled static defaults on every seeded input — the plan is a
// performance decision, never a semantic one. kForce turns a silent
// sampling fallback into a hard error, so a planner that stopped engaging
// would fail here instead of degenerating into static-vs-static.
TEST(SimdDifferentialTest, PlannedParsesMatchStaticDefaults) {
  std::vector<NamedFormat> formats;
  ASSERT_NO_FATAL_FAILURE(formats = RegisteredFormats());
  for (const NamedFormat& format : formats) {
    for (uint64_t seed = 0; seed < 256; ++seed) {
      const std::string input = InputForSeed(format, seed * 7 + 3);
      ParseOptions options;
      options.format = format.format;
      // Alternate the reject policy so the planner's vector_delimited
      // tagging upgrade engages on the uniform-column seeds.
      options.column_count_policy = (seed % 2) != 0
                                        ? ColumnCountPolicy::kReject
                                        : ColumnCountPolicy::kRobust;

      ParseOptions unplanned = options;
      unplanned.planner = PlannerMode::kDisabled;
      ParseOptions planned = options;
      planned.planner = PlannerMode::kForce;

      const Result<ParseOutput> want = Parser::Parse(input, unplanned);
      const Result<ParseOutput> got = Parser::Parse(input, planned);
      const std::string context =
          format.name + " seed " + std::to_string(seed);
      ASSERT_EQ(want.ok(), got.ok())
          << context << ": "
          << (want.ok() ? got.status() : want.status()).ToString();
      if (!want.ok()) continue;
      ASSERT_TRUE(want->table.Equals(got->table)) << context;
      ASSERT_EQ(want->min_columns, got->min_columns) << context;
      ASSERT_EQ(want->max_columns, got->max_columns) << context;
      ASSERT_EQ(want->records_dropped, got->records_dropped) << context;
      ASSERT_EQ(want->remainder_offset, got->remainder_offset) << context;
    }
  }
}

// The arch levels this build claims must actually resolve to themselves —
// a level that silently degrades would turn the whole differential suite
// into swar-vs-swar.
TEST(SimdDifferentialTest, ForcedLevelsResolveExactly) {
  for (KernelLevel level : AvailableVectorLevels()) {
    ScopedKernelLevel force(level);
    EXPECT_EQ(simd::ResolveKernelLevel(simd::KernelKind::kAuto), level);
    EXPECT_EQ(simd::ResolveKernelLevel(simd::KernelKind::kSimd), level);
    // The test hook outranks even an explicit scalar request.
    EXPECT_EQ(simd::ResolveKernelLevel(simd::KernelKind::kScalar), level);
  }
  // The hook outranks the PARPARAW_FORCE_KERNEL environment override too.
  {
    ScopedKernelLevel force(KernelLevel::kScalar);
    EXPECT_EQ(simd::ResolveKernelLevel(simd::KernelKind::kAuto),
              KernelLevel::kScalar);
  }
  // With the hook cleared, an explicit scalar request resolves to scalar —
  // unless the environment override is active (scripts/check.sh kernel
  // sweep), which by design outranks the request.
  if (std::getenv("PARPARAW_FORCE_KERNEL") == nullptr) {
    EXPECT_EQ(simd::ResolveKernelLevel(simd::KernelKind::kScalar),
              KernelLevel::kScalar);
  }
}

}  // namespace
}  // namespace parparaw
