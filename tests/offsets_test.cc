#include <gtest/gtest.h>

#include "test_util.h"

namespace parparaw {
namespace {

TEST(ColumnOffsetOpTest, PaperDefinition) {
  // a ⊕ b = b if b absolute; {a.value + b.value, a.absolute} if b relative.
  const ColumnOffset rel2{2, false};
  const ColumnOffset rel3{3, false};
  const ColumnOffset abs1{1, true};
  EXPECT_EQ(CombineColumnOffsets(rel2, rel3).value, 5u);
  EXPECT_FALSE(CombineColumnOffsets(rel2, rel3).absolute);
  EXPECT_EQ(CombineColumnOffsets(rel2, abs1).value, 1u);
  EXPECT_TRUE(CombineColumnOffsets(rel2, abs1).absolute);
  EXPECT_EQ(CombineColumnOffsets(abs1, rel3).value, 4u);
  EXPECT_TRUE(CombineColumnOffsets(abs1, rel3).absolute);
}

TEST(ColumnOffsetOpTest, Associativity) {
  const ColumnOffset cases[] = {
      {0, false}, {1, false}, {5, false}, {0, true}, {2, true}, {7, true}};
  for (const auto& a : cases) {
    for (const auto& b : cases) {
      for (const auto& c : cases) {
        const ColumnOffset left =
            CombineColumnOffsets(CombineColumnOffsets(a, b), c);
        const ColumnOffset right =
            CombineColumnOffsets(a, CombineColumnOffsets(b, c));
        EXPECT_EQ(left.value, right.value);
        EXPECT_EQ(left.absolute, right.absolute);
      }
    }
  }
}

class OffsetStepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OffsetStepTest, RecordAndColumnOffsetsMatchSequential) {
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\nlast,row,z\n";
  ParseOptions options;
  options.chunk_size = GetParam();
  auto h = StepHarness::Make(input, options);
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->RunThroughOffsets().ok());

  // Sequential ground truth: replay the DFA tracking records and columns.
  const Dfa& dfa = h->options.format.dfa;
  int state = dfa.start_state();
  int64_t records = 0;
  uint32_t column = 0;
  size_t pos = 0;
  for (int64_t c = 0; c < h->state.num_chunks; ++c) {
    EXPECT_EQ(h->state.record_offsets[c], records) << "chunk " << c;
    EXPECT_EQ(h->state.entry_columns[c], column) << "chunk " << c;
    const size_t end = std::min(pos + GetParam(), input.size());
    for (; pos < end; ++pos) {
      const int group = dfa.SymbolGroup(static_cast<uint8_t>(input[pos]));
      const uint8_t flags = dfa.Flags(state, group);
      if (flags & kSymbolRecordDelimiter) {
        ++records;
        column = 0;
      } else if (flags & kSymbolFieldDelimiter) {
        ++column;
      }
      state = dfa.NextState(state, group);
    }
  }
  EXPECT_EQ(h->state.num_records, records);  // trailing newline present
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, OffsetStepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 31, 1024));

TEST(OffsetStepTest, TrailingRecordCountsOnceMore) {
  ParseOptions options;
  options.chunk_size = 4;
  auto h = StepHarness::Make("a,b\nc,d", options);
  ASSERT_TRUE(h->RunThroughOffsets().ok());
  EXPECT_EQ(h->state.num_records, 2);
}

TEST(OffsetStepTest, EmptyLinesMakeEmptyRecords) {
  ParseOptions options;
  options.chunk_size = 3;
  auto h = StepHarness::Make("\n\na\n", options);
  ASSERT_TRUE(h->RunThroughOffsets().ok());
  EXPECT_EQ(h->state.num_records, 3);
}

TEST(BitmapStepTest, FlagsMatchSequentialDfa) {
  const std::string input = "x,\"a,\n\"\"q\"\ny\n";
  ParseOptions options;
  options.chunk_size = 2;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughBitmaps().ok());

  const Dfa& dfa = h->options.format.dfa;
  int state = dfa.start_state();
  for (size_t i = 0; i < input.size(); ++i) {
    const int group = dfa.SymbolGroup(static_cast<uint8_t>(input[i]));
    EXPECT_EQ(h->state.symbol_flags[i], dfa.Flags(state, group))
        << "byte " << i << " '" << input[i] << "'";
    state = dfa.NextState(state, group);
  }
}

TEST(BitmapStepTest, ValidationFailsOnInvalidSymbol) {
  ParseOptions options;
  options.chunk_size = 4;
  options.validate = true;
  auto h = StepHarness::Make("ab\"cd\n", options);  // quote in bare field
  const Status st = h->RunThroughBitmaps();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("offset 2"), std::string::npos)
      << st.message();
}

TEST(BitmapStepTest, ValidationFailsOnNonAcceptingEnd) {
  ParseOptions options;
  options.validate = true;
  auto h = StepHarness::Make("a,\"unterminated", options);
  const Status st = h->RunThroughBitmaps();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ENC"), std::string::npos) << st.message();
}

TEST(BitmapStepTest, NoValidationPassesOnInvalidInput) {
  ParseOptions options;
  options.validate = false;
  auto h = StepHarness::Make("ab\"cd\n", options);
  EXPECT_TRUE(h->RunThroughBitmaps().ok());
  EXPECT_GE(h->state.first_invalid_offset, 0);
}

}  // namespace
}  // namespace parparaw
