// CRC-32C (Castagnoli) unit and differential tests (src/util/crc32c).
//
// The serve layer trusts this checksum to catch any bit flip on the
// wire, so the tests pin the polynomial to the published vectors,
// verify incremental composition, and run a seeded differential sweep
// of the SSE4.2 hardware path against the slice-by-8 software tables.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/crc32c.h"

namespace parparaw {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical check value for CRC-32C (RFC 3720 appendix, iSCSI).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes — another published iSCSI test vector.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\xFF')), 0x62A8AB43u);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t clean = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), clean)
          << "missed flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(Crc32cTest, ExtendComposesAcrossSplits) {
  const std::string data = "payload bytes that get split at every point";
  const uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = ExtendCrc32c(0, data.data(), split);
    crc = ExtendCrc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, HardwareMatchesSoftware) {
  if (!Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "no SSE4.2 CRC32 instruction on this host";
  }
  // Seeded xorshift sweep over lengths 0..512 and all alignments: the
  // hardware path (8-byte stride with scalar prologue) must agree with
  // the slice-by-8 tables byte for byte.
  uint64_t state = 0xC0FFEE123456789ULL;
  auto next = [&state]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  };
  std::string buffer(600, '\0');
  for (char& c : buffer) c = static_cast<char>(next());
  for (size_t len = 0; len <= 512; ++len) {
    const size_t offset = next() % (buffer.size() - len);
    const uint32_t sw =
        internal::ExtendCrc32cSoftware(0, buffer.data() + offset, len);
    const uint32_t any = ExtendCrc32c(0, buffer.data() + offset, len);
    ASSERT_EQ(sw, any) << "len " << len << " offset " << offset;
  }
}

}  // namespace
}  // namespace parparaw
