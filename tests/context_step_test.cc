#include <gtest/gtest.h>

#include "test_util.h"

namespace parparaw {
namespace {

using rfc4180::kEnc;
using rfc4180::kEor;
using rfc4180::kFld;

class ContextStepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ContextStepTest, EntryStatesMatchSequentialSimulation) {
  // Figure 1/3's scenario: a quoted field containing delimiters spans
  // several chunks; every chunk must still learn its true entry state.
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\n7,x,\"y\"\n";
  ParseOptions options;
  options.chunk_size = GetParam();
  auto harness = StepHarness::Make(input, options);
  ASSERT_NE(harness, nullptr);
  ASSERT_TRUE(harness->RunContext().ok());

  const Dfa& dfa = harness->options.format.dfa;
  const auto* data = reinterpret_cast<const uint8_t*>(input.data());
  for (int64_t c = 0; c < harness->state.num_chunks; ++c) {
    const size_t begin = static_cast<size_t>(c) * GetParam();
    const uint8_t expected = dfa.Run(dfa.start_state(), data, begin);
    EXPECT_EQ(harness->state.entry_states[c], expected) << "chunk " << c;
  }
  EXPECT_EQ(harness->state.final_state,
            dfa.Run(dfa.start_state(), data, input.size()));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ContextStepTest,
                         ::testing::Values(1, 2, 3, 5, 7, 31, 64, 4096));

TEST(ContextStepTest, TrailingRecordDetection) {
  ParseOptions options;
  options.chunk_size = 4;
  {
    auto h = StepHarness::Make("a,b\nc,d\n", options);
    ASSERT_TRUE(h->RunContext().ok());
    EXPECT_FALSE(h->state.has_trailing_record);
    EXPECT_EQ(h->state.final_state, kEor);
  }
  {
    auto h = StepHarness::Make("a,b\nc,d", options);
    ASSERT_TRUE(h->RunContext().ok());
    EXPECT_TRUE(h->state.has_trailing_record);
    EXPECT_EQ(h->state.final_state, kFld);
  }
  {
    // Unterminated quote: mid-record too (best-effort emission).
    auto h = StepHarness::Make("a,\"open", options);
    ASSERT_TRUE(h->RunContext().ok());
    EXPECT_TRUE(h->state.has_trailing_record);
    EXPECT_EQ(h->state.final_state, kEnc);
  }
}

TEST(ContextStepTest, QuotedNewlineDoesNotLookLikeRecordBoundary) {
  // The motivating example: thread starting inside the quoted region must
  // learn it is in ENC state.
  const std::string input = "\"colors:\nred,green\"\nshelf,x\n";
  ParseOptions options;
  options.chunk_size = 8;  // boundary falls inside the quoted region
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunContext().ok());
  EXPECT_EQ(h->state.entry_states[1], kEnc);
}

TEST(ContextStepTest, SingleChunkStartsAtStartState) {
  ParseOptions options;
  options.chunk_size = 1 << 20;
  auto h = StepHarness::Make("a,b\n", options);
  ASSERT_TRUE(h->RunContext().ok());
  ASSERT_EQ(h->state.num_chunks, 1);
  EXPECT_EQ(h->state.entry_states[0], kEor);
}

}  // namespace
}  // namespace parparaw
