#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/parser.h"
#include "dfa/formats.h"
#include "obs/metrics.h"
#include "simd/dispatch.h"
#include "simd/simd_kernels.h"
#include "test_util.h"
#include "workload/generators.h"

// Properties of the convergence speculation in the fused context+bitmap
// kernels (src/simd):
//
//  - Chunks whose state lanes never converge (the in-quote / out-of-quote
//    ambiguity of unquoted data under a quoting DFA, unterminated quotes
//    spanning chunks) take the non-speculative path and still match the
//    scalar pipeline bit for bit.
//  - The bitmap step's verification token always detects a speculation
//    whose assumed entry arrival state is wrong, falls back to the exact
//    re-walk, and reports the event through simd.mis_speculations.
//  - The fused operator's per-chunk summaries obey the monoid laws the
//    paper's scan (§3.1/§3.2) depends on: associativity, identity, and
//    homomorphism over input concatenation.

namespace parparaw {
namespace {

using simd::KernelLevel;

class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(KernelLevel level) {
    simd::SetForcedKernelLevel(level);
  }
  ~ScopedKernelLevel() { simd::SetForcedKernelLevel(std::nullopt); }
};

std::vector<KernelLevel> AvailableVectorLevels() {
  std::vector<KernelLevel> levels = {KernelLevel::kSwar};
  for (KernelLevel level :
       {KernelLevel::kSse42, KernelLevel::kAvx2, KernelLevel::kNeon}) {
    if (simd::KernelLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

ParseOptions Rfc4180Options(size_t chunk_size) {
  ParseOptions options;
  auto format = Rfc4180Format();
  EXPECT_TRUE(format.ok());
  if (format.ok()) options.format = *std::move(format);
  options.chunk_size = chunk_size;
  return options;
}

void ExpectBitmapsMatchScalar(const std::string& input,
                              const ParseOptions& options,
                              KernelLevel level) {
  simd::SetForcedKernelLevel(KernelLevel::kScalar);
  auto scalar = StepHarness::Make(input, options);
  ASSERT_NE(scalar, nullptr);
  ASSERT_TRUE(scalar->RunThroughBitmaps().ok());
  simd::SetForcedKernelLevel(level);
  auto vectorized = StepHarness::Make(input, options);
  ASSERT_NE(vectorized, nullptr);
  ASSERT_TRUE(vectorized->RunThroughBitmaps().ok());
  simd::SetForcedKernelLevel(std::nullopt);

  ASSERT_EQ(scalar->state.symbol_flags, vectorized->state.symbol_flags);
  ASSERT_EQ(scalar->state.record_counts, vectorized->state.record_counts);
  ASSERT_EQ(scalar->state.first_invalid_offset,
            vectorized->state.first_invalid_offset);
  ASSERT_EQ(scalar->state.final_state, vectorized->state.final_state);
}

// Unquoted data under the quoting RFC 4180 DFA never converges: the lane
// that entered the chunk inside a quoted field stays in ENC on plain data
// forever, and ENC is not the trap state. Every chunk must report
// spec_offset == -1, count as unconverged, and the non-speculative path
// must still match scalar exactly.
TEST(SimdSpeculationTest, UnquotedDataNeverConverges) {
  std::string input;
  for (int r = 0; r < 200; ++r) {
    input += "alpha,beta,gamma,delta\n";
  }
  for (KernelLevel level : AvailableVectorLevels()) {
    obs::MetricsRegistry metrics;
    ParseOptions options = Rfc4180Options(31);
    options.metrics = &metrics;
    {
      ScopedKernelLevel force(level);
      auto harness = StepHarness::Make(input, options);
      ASSERT_NE(harness, nullptr);
      ASSERT_TRUE(harness->RunContext().ok());
      for (int64_t c = 0; c < harness->state.num_chunks; ++c) {
        EXPECT_EQ(harness->state.spec_offsets[c], -1)
            << "chunk " << c << " level " << simd::KernelLevelName(level);
      }
      EXPECT_EQ(metrics.GetCounter("simd.chunks_unconverged")->Value(),
                harness->state.num_chunks);
      EXPECT_EQ(metrics.GetCounter("simd.chunks_converged")->Value(), 0);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectBitmapsMatchScalar(input, options, level));
  }
}

// An unterminated quote spanning many chunks: the opening chunk converges
// (the stray-quote parity dies in the trap state), every following chunk
// is plain data inside the quote and must not converge, and the parse
// still matches scalar — including the trailing-record state.
TEST(SimdSpeculationTest, UnterminatedQuoteSpanningChunks) {
  std::string input = "\"";
  input.append(1000, 'a');  // never closed
  for (KernelLevel level : AvailableVectorLevels()) {
    obs::MetricsRegistry metrics;
    ParseOptions options = Rfc4180Options(31);
    options.metrics = &metrics;
    {
      ScopedKernelLevel force(level);
      auto harness = StepHarness::Make(input, options);
      ASSERT_NE(harness, nullptr);
      ASSERT_TRUE(harness->RunContext().ok());
      ASSERT_GE(harness->state.num_chunks, 4);
      EXPECT_GE(harness->state.spec_offsets[0], 0)
          << "opening chunk should converge once the quote kills the "
             "out-of-quote lanes";
      EXPECT_EQ(harness->state.spec_states[0],
                static_cast<uint8_t>(rfc4180::kEnc));
      for (int64_t c = 1; c < harness->state.num_chunks; ++c) {
        EXPECT_EQ(harness->state.spec_offsets[c], -1) << "chunk " << c;
      }
      EXPECT_EQ(metrics.GetCounter("simd.chunks_converged")->Value(), 1);
      EXPECT_EQ(metrics.GetCounter("simd.chunks_unconverged")->Value(),
                harness->state.num_chunks - 1);
      EXPECT_GT(
          metrics.GetHistogram("simd.fastpath_bytes")->Snapshot().count, 0);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectBitmapsMatchScalar(input, options, level));
  }
}

// Genuine mis-speculation: the input goes invalid in an early chunk, so the
// true entry state of later chunks is the trap state, while their kernels
// speculated from the converged live state. The bitmap step's token check
// must catch every such chunk, re-walk it exactly, and count the events.
TEST(SimdSpeculationTest, TrappedEntryStateIsDetected) {
  // Byte 1's quote is invalid after field data; everything after is parsed
  // from the trap state. Quoted records make the later chunks converge.
  std::string input = "x\"";
  for (int r = 0; r < 40; ++r) {
    input += "\"quoted field\",\"another\"\n";
  }
  for (KernelLevel level : AvailableVectorLevels()) {
    obs::MetricsRegistry metrics;
    ParseOptions options = Rfc4180Options(31);
    options.metrics = &metrics;
    int64_t converged = 0;
    {
      ScopedKernelLevel force(level);
      auto harness = StepHarness::Make(input, options);
      ASSERT_NE(harness, nullptr);
      ASSERT_TRUE(harness->RunThroughBitmaps().ok());
      converged = metrics.GetCounter("simd.chunks_converged")->Value();
      ASSERT_GT(converged, 0) << simd::KernelLevelName(level);
      // Converged chunks after the invalid byte speculated from a live
      // state while the true path sits in the trap: exactly those whose
      // true entry is the trap but whose token is a live state must have
      // been detected and re-walked.
      int64_t expected_mis = 0;
      for (int64_t c = 0; c < harness->state.num_chunks; ++c) {
        if (harness->state.spec_offsets[c] >= 0 &&
            harness->state.entry_states[c] == rfc4180::kInv &&
            harness->state.spec_states[c] != rfc4180::kInv) {
          ++expected_mis;
        }
      }
      ASSERT_GT(expected_mis, 0) << simd::KernelLevelName(level);
      EXPECT_EQ(metrics.GetCounter("simd.mis_speculations")->Value(),
                expected_mis)
          << simd::KernelLevelName(level);
      EXPECT_EQ(harness->state.first_invalid_offset, 1);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectBitmapsMatchScalar(input, options, level));
  }
}

// Forced mis-speculation: corrupt every verification token after the
// context pass and let the bitmap step run. Every converged chunk must be
// detected, re-walked, and produce bit-identical results anyway.
TEST(SimdSpeculationTest, CorruptedTokensAlwaysDetected) {
  std::string input;
  for (int r = 0; r < 60; ++r) {
    input += "\"field one\",\"field two\",\"field three\"\n";
  }
  for (KernelLevel level : AvailableVectorLevels()) {
    // Scalar reference bitmaps.
    simd::SetForcedKernelLevel(KernelLevel::kScalar);
    ParseOptions scalar_options = Rfc4180Options(64);
    auto scalar = StepHarness::Make(input, scalar_options);
    ASSERT_NE(scalar, nullptr);
    ASSERT_TRUE(scalar->RunThroughBitmaps().ok());
    simd::SetForcedKernelLevel(std::nullopt);

    obs::MetricsRegistry metrics;
    ParseOptions options = Rfc4180Options(64);
    options.metrics = &metrics;
    ScopedKernelLevel force(level);
    auto harness = StepHarness::Make(input, options);
    ASSERT_NE(harness, nullptr);
    ASSERT_TRUE(harness->RunContext().ok());
    int64_t corrupted = 0;
    for (int64_t c = 0; c < harness->state.num_chunks; ++c) {
      if (harness->state.spec_offsets[c] < 0) continue;
      // A state the true walk cannot arrive in at the convergence point.
      harness->state.spec_states[c] =
          harness->state.spec_states[c] == rfc4180::kEsc ? rfc4180::kEof
                                                         : rfc4180::kEsc;
      ++corrupted;
    }
    ASSERT_GT(corrupted, 0) << simd::KernelLevelName(level);
    ASSERT_TRUE(BitmapStep::Run(&harness->state, &harness->timings).ok());
    EXPECT_EQ(metrics.GetCounter("simd.mis_speculations")->Value(), corrupted);

    // Despite every token being wrong, the fallback re-walk restores the
    // exact scalar results.
    EXPECT_EQ(scalar->state.symbol_flags, harness->state.symbol_flags);
    EXPECT_EQ(scalar->state.record_counts, harness->state.record_counts);
    EXPECT_EQ(scalar->state.first_invalid_offset,
              harness->state.first_invalid_offset);
  }
}

// --- Monoid laws for the fused operator -------------------------------
//
// The fused kernel's per-chunk summary, evaluated for every possible entry
// state, is (end state, record count, column-offset contribution). Under
// segment concatenation these compose as
//   (a . b)(e) = (b.end[a.end(e)],
//                 a.records(e) + b.records(a.end(e)),
//                 a.col(e) (+) b.col(a.end(e)))
// with (+) the paper's column-offset operator. The scan's correctness rests
// on this being a monoid action; check associativity, identity, and that
// summarising a concatenation equals composing the summaries.

struct SegmentSummary {
  uint8_t end_state[kMaxDfaStates] = {};
  uint32_t records[kMaxDfaStates] = {};
  ColumnOffset col[kMaxDfaStates] = {};
};

SegmentSummary Summarise(const simd::KernelPlan& plan,
                         const std::string& segment, int num_states) {
  SegmentSummary s;
  std::vector<uint8_t> scratch(segment.size(), 0);
  for (int e = 0; e < num_states; ++e) {
    const simd::FlagWalkResult walk = simd::WalkEmitFlags(
        plan, reinterpret_cast<const uint8_t*>(segment.data()), 0,
        segment.size(), static_cast<uint8_t>(e), scratch.data());
    s.end_state[e] = walk.end_state;
    s.records[e] = walk.records;
    s.col[e] =
        ColumnOffset{walk.fields_since_record, walk.saw_record_delimiter};
  }
  return s;
}

SegmentSummary IdentitySummary(int num_states) {
  SegmentSummary s;
  for (int e = 0; e < num_states; ++e) {
    s.end_state[e] = static_cast<uint8_t>(e);
  }
  return s;
}

SegmentSummary Combine(const SegmentSummary& a, const SegmentSummary& b,
                       int num_states) {
  SegmentSummary r;
  for (int e = 0; e < num_states; ++e) {
    const uint8_t mid = a.end_state[e];
    r.end_state[e] = b.end_state[mid];
    r.records[e] = a.records[e] + b.records[mid];
    r.col[e] = CombineColumnOffsets(a.col[e], b.col[mid]);
  }
  return r;
}

void ExpectSummariesEqual(const SegmentSummary& x, const SegmentSummary& y,
                          int num_states, const std::string& context) {
  for (int e = 0; e < num_states; ++e) {
    ASSERT_EQ(x.end_state[e], y.end_state[e]) << context << " entry " << e;
    ASSERT_EQ(x.records[e], y.records[e]) << context << " entry " << e;
    ASSERT_EQ(x.col[e].value, y.col[e].value) << context << " entry " << e;
    ASSERT_EQ(x.col[e].absolute, y.col[e].absolute)
        << context << " entry " << e;
  }
}

TEST(SimdSpeculationTest, FusedOperatorMonoidLaws) {
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());
  const simd::KernelPlan plan = simd::BuildKernelPlan(format->dfa);
  const int n = format->dfa.num_states();

  RandomCsvOptions gen;
  gen.quote_probability = 0.5;
  gen.embedded_delimiter_probability = 0.5;
  gen.trailing_newline = false;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    gen.num_records = 2 + static_cast<int>(seed % 6);
    const std::string input = GenerateRandomCsv(seed, gen);
    if (input.size() < 3) continue;
    const size_t cut1 = input.size() / 3;
    const size_t cut2 = 2 * input.size() / 3;
    const std::string sa = input.substr(0, cut1);
    const std::string sb = input.substr(cut1, cut2 - cut1);
    const std::string sc = input.substr(cut2);
    const SegmentSummary a = Summarise(plan, sa, n);
    const SegmentSummary b = Summarise(plan, sb, n);
    const SegmentSummary c = Summarise(plan, sc, n);
    const std::string context = "seed " + std::to_string(seed);

    // Associativity: (a.b).c == a.(b.c).
    ASSERT_NO_FATAL_FAILURE(ExpectSummariesEqual(
        Combine(Combine(a, b, n), c, n), Combine(a, Combine(b, c, n), n), n,
        context + " assoc"));
    // Identity on both sides.
    const SegmentSummary id = IdentitySummary(n);
    ASSERT_NO_FATAL_FAILURE(
        ExpectSummariesEqual(Combine(id, a, n), a, n, context + " left id"));
    ASSERT_NO_FATAL_FAILURE(
        ExpectSummariesEqual(Combine(a, id, n), a, n, context + " right id"));
    // Homomorphism: summarising the concatenation equals composing the
    // segment summaries — the property that lets the bitmap step trust a
    // per-chunk decomposition at any chunk size.
    ASSERT_NO_FATAL_FAILURE(
        ExpectSummariesEqual(Summarise(plan, input, n),
                             Combine(Combine(a, b, n), c, n), n,
                             context + " homomorphism"));
  }
}

// End-to-end sanity on the speculative path: a fully-quoted workload (the
// yelp-like shape, which converges in nearly every chunk) parses to the
// same table at every level.
TEST(SimdSpeculationTest, QuotedWorkloadParsesIdenticallyAtEveryLevel) {
  const std::string input = GenerateYelpLike(7, 64 * 1024);
  ParseOptions options = Rfc4180Options(256);
  simd::SetForcedKernelLevel(KernelLevel::kScalar);
  Result<ParseOutput> reference = Parser::Parse(input, options);
  simd::SetForcedKernelLevel(std::nullopt);
  ASSERT_TRUE(reference.ok());
  for (KernelLevel level : AvailableVectorLevels()) {
    ScopedKernelLevel force(level);
    Result<ParseOutput> got = Parser::Parse(input, options);
    ASSERT_TRUE(got.ok()) << simd::KernelLevelName(level);
    EXPECT_TRUE(reference->table.Equals(got->table))
        << simd::KernelLevelName(level);
  }
}

}  // namespace
}  // namespace parparaw
