#include <gtest/gtest.h>

#include "baseline/instant_loading.h"
#include "baseline/quote_count.h"
#include "baseline/row_buffer.h"
#include "baseline/sequential_parser.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(RecordBufferTest, FieldsAndRecords) {
  RecordBuffer buffer;
  buffer.AppendFieldBytes("ab");
  buffer.EndField();
  buffer.AppendFieldBytes("c");
  buffer.EndField();
  buffer.EndRecord();
  buffer.EndField();  // empty field
  buffer.EndRecord();
  ASSERT_EQ(buffer.num_records(), 2);
  EXPECT_EQ(buffer.FieldCount(0), 2);
  EXPECT_EQ(buffer.FieldCount(1), 1);
  EXPECT_EQ(buffer.FieldValue(0), "ab");
  EXPECT_EQ(buffer.FieldValue(1), "c");
  EXPECT_EQ(buffer.FieldValue(2), "");
  EXPECT_EQ(buffer.FirstField(1), 2);
}

TEST(RecordBufferTest, AppendMergesWithOffsets) {
  RecordBuffer a;
  a.AppendFieldBytes("x");
  a.EndField();
  a.EndRecord();
  RecordBuffer b;
  b.AppendFieldBytes("yz");
  b.EndField();
  b.AppendFieldBytes("w");
  b.EndField();
  b.EndRecord();
  a.Append(b);
  ASSERT_EQ(a.num_records(), 2);
  EXPECT_EQ(a.FieldValue(a.FirstField(1)), "yz");
  EXPECT_EQ(a.FieldValue(a.FirstField(1) + 1), "w");
}

TEST(SequentialParserTest, BasicCsv) {
  ParseOptions options;
  options.schema.AddField(Field("id", DataType::Int64()));
  options.schema.AddField(Field("name", DataType::String()));
  auto result = SequentialParser::Parse("1,a\n2,\"b,c\"\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows, 2);
  EXPECT_EQ(result->table.columns[0].Value<int64_t>(1), 2);
  EXPECT_EQ(result->table.columns[1].StringValue(1), "b,c");
}

TEST(SequentialParserTest, ValidateErrors) {
  ParseOptions options;
  options.validate = true;
  EXPECT_FALSE(SequentialParser::Parse("a\"b\n", options).ok());
  EXPECT_FALSE(SequentialParser::Parse("\"open", options).ok());
}

class InstantLoadingTest : public ::testing::TestWithParam<int> {};

TEST_P(InstantLoadingTest, UnquotedInputMatchesSequential) {
  const std::string input = GenerateTaxiLike(5, 32 * 1024);
  ParseOptions base;
  base.schema = TaxiSchema();
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  InstantLoadingOptions options;
  options.base = base;
  options.num_workers = GetParam();
  options.safe_mode = false;
  auto got = InstantLoadingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST_P(InstantLoadingTest, SafeModeHandlesQuotedNewlines) {
  const std::string input = GenerateYelpLike(6, 32 * 1024);
  ParseOptions base;
  base.schema = YelpSchema();
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  InstantLoadingOptions options;
  options.base = base;
  options.num_workers = GetParam();
  options.safe_mode = true;
  auto got = InstantLoadingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

INSTANTIATE_TEST_SUITE_P(Workers, InstantLoadingTest,
                         ::testing::Values(1, 2, 3, 8, 17));

TEST(InstantLoadingTest, UnsafeModeBreaksOnQuotedNewlines) {
  // The documented failure: naive newline splitting cuts inside a quoted
  // field ("Inst. Loading could not handle the yelp dataset").
  std::string input;
  for (int i = 0; i < 50; ++i) {
    input += "id" + std::to_string(i) + ",\"text with\nnewline\"\n";
  }
  ParseOptions base;
  base.schema.AddField(Field("id", DataType::String()));
  base.schema.AddField(Field("text", DataType::String()));
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  InstantLoadingOptions options;
  options.base = base;
  options.num_workers = 8;
  options.safe_mode = false;
  auto got = InstantLoadingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->table.Equals(expected->table));
  EXPECT_NE(got->table.num_rows, expected->table.num_rows);
}

TEST(QuoteCountTest, MatchesSequentialOnRfc4180) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const std::string input = GenerateYelpLike(seed, 16 * 1024);
    ParseOptions base;
    base.schema = YelpSchema();
    auto expected = SequentialParser::Parse(input, base);
    ASSERT_TRUE(expected.ok());
    auto got = QuoteCountParser::Parse(input, base);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->table.Equals(expected->table)) << "seed " << seed;
  }
}

TEST(QuoteCountTest, EscapedQuotesKeepParityIntact) {
  const std::string input = "a,\"x\"\"y\"\nb,\"p,q\"\nc,plain\n";
  ParseOptions base;
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());
  auto got = QuoteCountParser::Parse(input, base);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST(QuoteCountTest, BreaksOnCommentsAsThePaperPredicts) {
  // A quote inside a comment line flips the parity; the speculative
  // parser corrupts all subsequent record boundaries while ParPaRaw's DFA
  // handles the format correctly (§1: "As soon as the format gets more
  // complex, e.g., by introducing line comments, such an approach tends
  // to break").
  DsvOptions dsv;
  dsv.comment = '#';
  auto format = DsvFormat(dsv);
  ASSERT_TRUE(format.ok());
  const std::string input =
      "# here's a stray \" quote\n1,a\n2,b\n3,c\n";

  ParseOptions options;
  options.format = *format;
  auto expected = SequentialParser::Parse(input, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->table.num_rows, 3);

  auto parparaw = Parser::Parse(input, options);
  ASSERT_TRUE(parparaw.ok());
  EXPECT_TRUE(parparaw->table.Equals(expected->table));

  // QuoteCount has no comment support; its DFA (RFC 4180) and parity
  // speculation mis-handle the input.
  ParseOptions rfc;
  auto speculative = QuoteCountParser::Parse(input, rfc);
  ASSERT_TRUE(speculative.ok());
  EXPECT_NE(speculative->table.num_rows, 3);
}

TEST(BaselinesTest, TrailingRecordHandledByAll) {
  const std::string input = "1,a\n2,b";
  ParseOptions base;
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->table.num_rows, 2);

  InstantLoadingOptions il;
  il.base = base;
  il.num_workers = 3;
  auto instant = InstantLoadingParser::Parse(input, il);
  ASSERT_TRUE(instant.ok());
  EXPECT_TRUE(instant->table.Equals(expected->table));

  auto quote = QuoteCountParser::Parse(input, base);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(quote->table.Equals(expected->table));
}

TEST(BaselinesTest, EmptyInput) {
  ParseOptions base;
  base.schema.AddField(Field("a", DataType::String()));
  auto seq = SequentialParser::Parse("", base);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->table.num_rows, 0);
  InstantLoadingOptions il;
  il.base = base;
  auto instant = InstantLoadingParser::Parse("", il);
  ASSERT_TRUE(instant.ok());
  EXPECT_EQ(instant->table.num_rows, 0);
  auto quote = QuoteCountParser::Parse("", base);
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->table.num_rows, 0);
}

}  // namespace
}  // namespace parparaw
