#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace parparaw {
namespace {

// Reconstructs (column, row) -> value from the tag step's outputs for the
// record-tag mode.
std::map<std::pair<uint32_t, uint32_t>, std::string> FieldsFromTags(
    const PipelineState& state) {
  std::map<std::pair<uint32_t, uint32_t>, std::string> fields;
  for (size_t i = 0; i < state.css.size(); ++i) {
    fields[{state.col_tags[i], state.rec_tags[i]}] +=
        static_cast<char>(state.css[i]);
  }
  return fields;
}

TEST(TagStepTest, Figure4Example) {
  // The running example of Figs. 3-5.
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\n";
  ParseOptions options;
  options.chunk_size = 10;
  auto h = StepHarness::Make(input, options);
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->RunThroughTagging().ok());

  EXPECT_EQ(h->state.num_records, 2);
  EXPECT_EQ(h->state.num_out_rows, 2);
  EXPECT_EQ(h->state.num_partitions, 3u);
  EXPECT_EQ(h->state.min_columns, 3u);
  EXPECT_EQ(h->state.max_columns, 3u);

  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "1941");
  EXPECT_EQ(fields.at({1, 0}), "199.99");
  EXPECT_EQ(fields.at({2, 0}), "Bookcase");
  EXPECT_EQ(fields.at({0, 1}), "1938");
  EXPECT_EQ(fields.at({1, 1}), "19.99");
  // Escaped quotes unescape to single quotes; the quoted newline stays.
  EXPECT_EQ(fields.at({2, 1}), "Frame\n\"Ribba\", black");
}

class TaggingChunkSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TaggingChunkSweep, TagsAreChunkSizeInvariant) {
  const std::string input =
      "a,\"b,\n\",c\n,,\nx,\"\"\"q\"\"\",z\ntrailing,1,2";
  ParseOptions base;
  base.chunk_size = 1 << 20;
  auto reference = StepHarness::Make(input, base);
  ASSERT_TRUE(reference->RunThroughTagging().ok());

  ParseOptions options;
  options.chunk_size = GetParam();
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());

  EXPECT_EQ(h->state.num_out_rows, reference->state.num_out_rows);
  EXPECT_EQ(h->state.css, reference->state.css);
  EXPECT_EQ(h->state.col_tags, reference->state.col_tags);
  EXPECT_EQ(h->state.rec_tags, reference->state.rec_tags);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, TaggingChunkSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 11, 31, 64));

TEST(TagStepTest, InlineTerminatedModeFigure6) {
  // Fig. 6's sample: 0,"Apples"\n1,\n2,"Pears"\n — column 1's CSS is
  // Apples\x1F\x1FPears\x1F (empty field = bare terminator).
  const std::string input = "0,\"Apples\"\n1,\n2,\"Pears\"\n";
  ParseOptions options;
  options.chunk_size = 5;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  const int64_t begin = h->state.column_css_offsets[1];
  const int64_t end = h->state.column_css_offsets[2];
  std::string css(h->state.css.begin() + begin, h->state.css.begin() + end);
  EXPECT_EQ(css, "Apples\x1F\x1FPears\x1F");
}

TEST(TagStepTest, VectorDelimitedModeKeepsDelimiterBytes) {
  const std::string input = "0,\"Apples\"\n1,\n2,\"Pears\"\n";
  ParseOptions options;
  options.chunk_size = 6;
  options.tagging_mode = TaggingMode::kVectorDelimited;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  const int64_t begin = h->state.column_css_offsets[1];
  const int64_t end = h->state.column_css_offsets[2];
  std::string css(h->state.css.begin() + begin, h->state.css.begin() + end);
  EXPECT_EQ(css, "Apples\n\nPears\n");
  // Field-end marks sit exactly on the delimiter slots.
  int marks = 0;
  for (int64_t i = begin; i < end; ++i) {
    if (h->state.field_end[i]) {
      ++marks;
      EXPECT_EQ(h->state.css[i], static_cast<uint8_t>('\n'));
    }
  }
  EXPECT_EQ(marks, 3);
}

TEST(TagStepTest, InlineModeDetectsTerminatorCollision) {
  std::string input = "a,b\n";
  input[0] = 0x1F;  // the default terminator as field data
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  const Status st = h->RunThroughTagging();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(TagStepTest, RaggedRecordsCountsAndPartitions) {
  const std::string input = "1,Apples\n2\n3,Pears,extra\n";
  ParseOptions options;
  options.chunk_size = 4;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  ASSERT_EQ(h->state.num_records, 3);
  EXPECT_EQ(h->state.record_column_counts[0], 2u);
  EXPECT_EQ(h->state.record_column_counts[1], 1u);
  EXPECT_EQ(h->state.record_column_counts[2], 3u);
  EXPECT_EQ(h->state.min_columns, 1u);
  EXPECT_EQ(h->state.max_columns, 3u);
  EXPECT_EQ(h->state.num_partitions, 3u);
}

TEST(TagStepTest, RejectPolicyDropsInconsistentRecords) {
  const std::string input = "1,Apples\n2\n3,Pears\n";
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_out_rows, 2);
  EXPECT_EQ(h->state.record_dropped[1], 1);
  // Dropped records leave no tagged symbols.
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "1");
  EXPECT_EQ(fields.at({0, 1}), "3");  // row remapped from record 2
}

TEST(TagStepTest, ValidatePolicyErrorsOnInconsistency) {
  const std::string input = "1,Apples\n2\n";
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  auto h = StepHarness::Make(input, options);
  const Status st = h->RunThroughTagging();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("record 1"), std::string::npos)
      << st.message();
}

TEST(TagStepTest, SkipRecordsDropsRequestedIndices) {
  const std::string input = "r0,a\nr1,b\nr2,c\nr3,d\n";
  ParseOptions options;
  options.skip_records = {1, 3};
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_out_rows, 2);
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "r0");
  EXPECT_EQ(fields.at({0, 1}), "r2");
}

TEST(TagStepTest, SkipColumnsDropsSymbols) {
  const std::string input = "a,bb,c\nd,ee,f\n";
  ParseOptions options;
  options.skip_columns = {1};
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.count({1, 0}), 0u);
  EXPECT_EQ(fields.count({1, 1}), 0u);
  EXPECT_EQ(fields.at({0, 0}), "a");
  EXPECT_EQ(fields.at({2, 1}), "f");
}

TEST(TagStepTest, ExcludeTrailingRecordForStreaming) {
  const std::string input = "a,b\npartial,rec";
  ParseOptions options;
  options.exclude_trailing_record = true;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_records, 2);
  EXPECT_EQ(h->state.num_out_rows, 1);
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.count({0, 1}), 0u);
}

TEST(PartitionStepTest, SymbolsGroupedByColumnInRecordOrder) {
  const std::string input = "a1,b1\na2,b2\na3,b3\n";
  ParseOptions options;
  options.chunk_size = 3;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  ASSERT_EQ(h->state.column_histogram.size(), 2u);
  EXPECT_EQ(h->state.column_histogram[0], 6u);
  EXPECT_EQ(h->state.column_histogram[1], 6u);
  std::string col0(h->state.css.begin(), h->state.css.begin() + 6);
  std::string col1(h->state.css.begin() + 6, h->state.css.end());
  EXPECT_EQ(col0, "a1a2a3");
  EXPECT_EQ(col1, "b1b2b3");
  // Record tags stay aligned with their symbols.
  EXPECT_EQ(h->state.rec_tags[0], 0u);
  EXPECT_EQ(h->state.rec_tags[2], 1u);
  EXPECT_EQ(h->state.rec_tags[4], 2u);
}

TEST(PartitionStepTest, EmptyInputProducesEmptyPartitions) {
  ParseOptions options;
  auto h = StepHarness::Make("\n", options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  // One empty record: no symbols at all, one partition from max col 0.
  EXPECT_EQ(h->state.css.size(), 0u);
}

}  // namespace
}  // namespace parparaw
