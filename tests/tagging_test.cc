#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace parparaw {
namespace {

// Reconstructs (column, row) -> value from the tag step's outputs for the
// record-tag mode.
std::map<std::pair<uint32_t, uint32_t>, std::string> FieldsFromTags(
    const PipelineState& state) {
  std::map<std::pair<uint32_t, uint32_t>, std::string> fields;
  for (size_t i = 0; i < state.css.size(); ++i) {
    fields[{state.col_tags[i], state.rec_tags[i]}] +=
        static_cast<char>(state.css[i]);
  }
  return fields;
}

TEST(TagStepTest, Figure4Example) {
  // The running example of Figs. 3-5. Inspects the per-symbol tag
  // sidebands, so it pins the symbol-sort transposition explicitly.
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\n";
  ParseOptions options;
  options.chunk_size = 10;
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->RunThroughTagging().ok());

  EXPECT_EQ(h->state.num_records, 2);
  EXPECT_EQ(h->state.num_out_rows, 2);
  EXPECT_EQ(h->state.num_partitions, 3u);
  EXPECT_EQ(h->state.min_columns, 3u);
  EXPECT_EQ(h->state.max_columns, 3u);

  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "1941");
  EXPECT_EQ(fields.at({1, 0}), "199.99");
  EXPECT_EQ(fields.at({2, 0}), "Bookcase");
  EXPECT_EQ(fields.at({0, 1}), "1938");
  EXPECT_EQ(fields.at({1, 1}), "19.99");
  // Escaped quotes unescape to single quotes; the quoted newline stays.
  EXPECT_EQ(fields.at({2, 1}), "Frame\n\"Ribba\", black");
}

class TaggingChunkSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TaggingChunkSweep, TagsAreChunkSizeInvariant) {
  const std::string input =
      "a,\"b,\n\",c\n,,\nx,\"\"\"q\"\"\",z\ntrailing,1,2";
  ParseOptions base;
  base.chunk_size = 1 << 20;
  base.transpose_mode = TransposeMode::kSymbolSort;
  auto reference = StepHarness::Make(input, base);
  ASSERT_TRUE(reference->RunThroughTagging().ok());

  ParseOptions options;
  options.chunk_size = GetParam();
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());

  EXPECT_EQ(h->state.num_out_rows, reference->state.num_out_rows);
  EXPECT_EQ(h->state.css, reference->state.css);
  EXPECT_EQ(h->state.col_tags, reference->state.col_tags);
  EXPECT_EQ(h->state.rec_tags, reference->state.rec_tags);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, TaggingChunkSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 11, 31, 64));

TEST(TagStepTest, InlineTerminatedModeFigure6) {
  // Fig. 6's sample: 0,"Apples"\n1,\n2,"Pears"\n — column 1's CSS is
  // Apples\x1F\x1FPears\x1F (empty field = bare terminator).
  const std::string input = "0,\"Apples\"\n1,\n2,\"Pears\"\n";
  ParseOptions options;
  options.chunk_size = 5;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  const int64_t begin = h->state.column_css_offsets[1];
  const int64_t end = h->state.column_css_offsets[2];
  std::string css(h->state.css.begin() + begin, h->state.css.begin() + end);
  EXPECT_EQ(css, "Apples\x1F\x1FPears\x1F");
}

TEST(TagStepTest, VectorDelimitedModeKeepsDelimiterBytes) {
  const std::string input = "0,\"Apples\"\n1,\n2,\"Pears\"\n";
  ParseOptions options;
  options.chunk_size = 6;
  options.tagging_mode = TaggingMode::kVectorDelimited;
  options.transpose_mode = TransposeMode::kSymbolSort;  // reads field_end
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  const int64_t begin = h->state.column_css_offsets[1];
  const int64_t end = h->state.column_css_offsets[2];
  std::string css(h->state.css.begin() + begin, h->state.css.begin() + end);
  EXPECT_EQ(css, "Apples\n\nPears\n");
  // Field-end marks sit exactly on the delimiter slots.
  int marks = 0;
  for (int64_t i = begin; i < end; ++i) {
    if (h->state.field_end[i]) {
      ++marks;
      EXPECT_EQ(h->state.css[i], static_cast<uint8_t>('\n'));
    }
  }
  EXPECT_EQ(marks, 3);
}

TEST(TagStepTest, InlineModeDetectsTerminatorCollision) {
  std::string input = "a,b\n";
  input[0] = 0x1F;  // the default terminator as field data
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  const Status st = h->RunThroughTagging();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(TagStepTest, RaggedRecordsCountsAndPartitions) {
  const std::string input = "1,Apples\n2\n3,Pears,extra\n";
  ParseOptions options;
  options.chunk_size = 4;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  ASSERT_EQ(h->state.num_records, 3);
  EXPECT_EQ(h->state.record_column_counts[0], 2u);
  EXPECT_EQ(h->state.record_column_counts[1], 1u);
  EXPECT_EQ(h->state.record_column_counts[2], 3u);
  EXPECT_EQ(h->state.min_columns, 1u);
  EXPECT_EQ(h->state.max_columns, 3u);
  EXPECT_EQ(h->state.num_partitions, 3u);
}

TEST(TagStepTest, RejectPolicyDropsInconsistentRecords) {
  const std::string input = "1,Apples\n2\n3,Pears\n";
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kReject;
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_out_rows, 2);
  EXPECT_EQ(h->state.record_dropped[1], 1);
  // Dropped records leave no tagged symbols.
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "1");
  EXPECT_EQ(fields.at({0, 1}), "3");  // row remapped from record 2
}

TEST(TagStepTest, ValidatePolicyErrorsOnInconsistency) {
  const std::string input = "1,Apples\n2\n";
  ParseOptions options;
  options.column_count_policy = ColumnCountPolicy::kValidate;
  auto h = StepHarness::Make(input, options);
  const Status st = h->RunThroughTagging();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("record 1"), std::string::npos)
      << st.message();
}

TEST(TagStepTest, SkipRecordsDropsRequestedIndices) {
  const std::string input = "r0,a\nr1,b\nr2,c\nr3,d\n";
  ParseOptions options;
  options.skip_records = {1, 3};
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_out_rows, 2);
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.at({0, 0}), "r0");
  EXPECT_EQ(fields.at({0, 1}), "r2");
}

TEST(TagStepTest, SkipColumnsDropsSymbols) {
  const std::string input = "a,bb,c\nd,ee,f\n";
  ParseOptions options;
  options.skip_columns = {1};
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.count({1, 0}), 0u);
  EXPECT_EQ(fields.count({1, 1}), 0u);
  EXPECT_EQ(fields.at({0, 0}), "a");
  EXPECT_EQ(fields.at({2, 1}), "f");
}

TEST(TagStepTest, ExcludeTrailingRecordForStreaming) {
  const std::string input = "a,b\npartial,rec";
  ParseOptions options;
  options.exclude_trailing_record = true;
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.num_records, 2);
  EXPECT_EQ(h->state.num_out_rows, 1);
  const auto fields = FieldsFromTags(h->state);
  EXPECT_EQ(fields.count({0, 1}), 0u);
}

TEST(PartitionStepTest, SymbolsGroupedByColumnInRecordOrder) {
  const std::string input = "a1,b1\na2,b2\na3,b3\n";
  ParseOptions options;
  options.chunk_size = 3;
  options.transpose_mode = TransposeMode::kSymbolSort;  // reads rec_tags
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  ASSERT_EQ(h->state.column_histogram.size(), 2u);
  EXPECT_EQ(h->state.column_histogram[0], 6u);
  EXPECT_EQ(h->state.column_histogram[1], 6u);
  std::string col0(h->state.css.begin(), h->state.css.begin() + 6);
  std::string col1(h->state.css.begin() + 6, h->state.css.end());
  EXPECT_EQ(col0, "a1a2a3");
  EXPECT_EQ(col1, "b1b2b3");
  // Record tags stay aligned with their symbols.
  EXPECT_EQ(h->state.rec_tags[0], 0u);
  EXPECT_EQ(h->state.rec_tags[2], 1u);
  EXPECT_EQ(h->state.rec_tags[4], 2u);
}

TEST(PartitionStepTest, EmptyInputProducesEmptyPartitions) {
  ParseOptions options;
  auto h = StepHarness::Make("\n", options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  // One empty record: no symbols at all, one partition from max col 0.
  EXPECT_EQ(h->state.css.size(), 0u);
}

// --- TransposeMode::kFieldGather step-level tests. The differential suite
// (transpose_differential_test.cc) proves whole-table equivalence; these
// pin the intermediate layout the gather path promises. ---

// Runs the same input through both transpose modes and asserts the CSS
// buffer and its per-column offsets come out byte-identical.
void ExpectGatherCssMatchesSymbolSort(const std::string& input,
                                      ParseOptions options) {
  options.transpose_mode = TransposeMode::kSymbolSort;
  auto symbol = StepHarness::Make(input, options);
  ASSERT_NE(symbol, nullptr);
  ASSERT_TRUE(symbol->RunThroughPartition().ok());

  options.transpose_mode = TransposeMode::kFieldGather;
  auto gather = StepHarness::Make(input, options);
  ASSERT_NE(gather, nullptr);
  ASSERT_TRUE(gather->RunThroughPartition().ok());

  EXPECT_EQ(gather->state.num_partitions, symbol->state.num_partitions);
  EXPECT_EQ(gather->state.column_css_offsets,
            symbol->state.column_css_offsets);
  EXPECT_EQ(gather->state.column_histogram, symbol->state.column_histogram);
  EXPECT_EQ(gather->state.css, symbol->state.css);
}

TEST(FieldGatherTest, CssMatchesSymbolSortOnFigure4) {
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\n\"\"Ribba\"\", "
      "black\"\n";
  ParseOptions options;
  options.chunk_size = 10;
  ExpectGatherCssMatchesSymbolSort(input, options);
}

TEST(FieldGatherTest, CssMatchesSymbolSortAcrossTaggingModes) {
  const std::string input = "0,\"Apples\"\n1,\n2,\"Pears\"\n";
  for (TaggingMode mode :
       {TaggingMode::kRecordTags, TaggingMode::kInlineTerminated,
        TaggingMode::kVectorDelimited}) {
    ParseOptions options;
    options.chunk_size = 5;
    options.tagging_mode = mode;
    ExpectGatherCssMatchesSymbolSort(input, options);
  }
}

TEST(FieldGatherTest, CssMatchesSymbolSortWithDropsAndSkips) {
  const std::string input = "r0,a,x\nr1,b,y\nr2\nr3,d,z\npartial,rec";
  ParseOptions options;
  options.chunk_size = 7;
  options.skip_records = {1};
  options.skip_columns = {1};
  options.column_count_policy = ColumnCountPolicy::kReject;
  options.exclude_trailing_record = true;
  ExpectGatherCssMatchesSymbolSort(input, options);
}

TEST(FieldGatherTest, EntriesGroupByColumnInRecordOrder) {
  const std::string input = "a1,b1\na2,b2\na3,b3\n";
  ParseOptions options;
  options.chunk_size = 3;
  options.transpose_mode = TransposeMode::kFieldGather;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  ASSERT_EQ(h->state.gather_entry_offsets.size(), 3u);
  EXPECT_EQ(h->state.gather_entry_offsets[0], 0);
  EXPECT_EQ(h->state.gather_entry_offsets[1], 3);
  EXPECT_EQ(h->state.gather_entry_offsets[2], 6);
  std::string col0(h->state.css.begin(), h->state.css.begin() + 6);
  std::string col1(h->state.css.begin() + 6, h->state.css.end());
  EXPECT_EQ(col0, "a1a2a3");
  EXPECT_EQ(col1, "b1b2b3");
  for (int64_t k = 0; k < 3; ++k) {
    const FieldEntry& entry = h->state.gather_entries[k];
    EXPECT_EQ(entry.row, k);
    EXPECT_EQ(entry.offset, k * 2);
    EXPECT_EQ(entry.length, 2);
  }
}

TEST(FieldGatherTest, ChunkSizeInvariant) {
  const std::string input =
      "a,\"b,\n\",c\n,,\nx,\"\"\"q\"\"\",z\ntrailing,1,2";
  ParseOptions base;
  base.chunk_size = 1 << 20;
  base.transpose_mode = TransposeMode::kFieldGather;
  auto reference = StepHarness::Make(input, base);
  ASSERT_TRUE(reference->RunThroughPartition().ok());
  for (size_t chunk : {1u, 2u, 3u, 5u, 7u, 11u, 31u, 64u}) {
    ParseOptions options;
    options.chunk_size = chunk;
    options.transpose_mode = TransposeMode::kFieldGather;
    auto h = StepHarness::Make(input, options);
    ASSERT_TRUE(h->RunThroughPartition().ok()) << "chunk=" << chunk;
    EXPECT_EQ(h->state.css, reference->state.css) << "chunk=" << chunk;
    EXPECT_EQ(h->state.column_css_offsets,
              reference->state.column_css_offsets)
        << "chunk=" << chunk;
    EXPECT_EQ(h->state.gather_entry_offsets,
              reference->state.gather_entry_offsets)
        << "chunk=" << chunk;
  }
}

TEST(FieldGatherTest, InlineModeDetectsTerminatorCollision) {
  std::string input = "a,b\n";
  input[0] = 0x1F;  // the default terminator as field data
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  options.transpose_mode = TransposeMode::kFieldGather;
  auto h = StepHarness::Make(input, options);
  const Status st = h->RunThroughTagging();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

// Satellite: adversarial delimiter-dense records must fail with a bounded
// ParseError instead of growing per-column tables without limit.
TEST(TagStepTest, MaxRecordColumnsRejectsAdversarialRow) {
  ParseOptions options;
  options.max_record_columns = 8;
  const std::string input = "ok,row\n" + std::string(63, ',') + "\nnext,r\n";
  for (TransposeMode mode :
       {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
    options.transpose_mode = mode;
    auto h = StepHarness::Make(input, options);
    const Status st = h->RunThroughTagging();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
    // The error names the offending record and its byte span.
    EXPECT_NE(st.message().find("record 1"), std::string::npos)
        << st.message();
    EXPECT_NE(st.message().find("bytes 7..70"), std::string::npos)
        << st.message();
  }
}

TEST(TagStepTest, MaxRecordColumnsAllowsLimitExactly) {
  ParseOptions options;
  options.max_record_columns = 4;
  auto h = StepHarness::Make("a,b,c,d\n", options);
  ASSERT_TRUE(h->RunThroughTagging().ok());
  EXPECT_EQ(h->state.max_columns, 4u);
}

}  // namespace
}  // namespace parparaw
