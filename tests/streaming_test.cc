#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/sequential_parser.h"
#include "io/file.h"
#include "stream/streaming_parser.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

TEST(StreamingTest, SmallPartitionsMatchOneShotParse) {
  const std::string input = GenerateYelpLike(3, 64 * 1024);
  ParseOptions base;
  base.schema = YelpSchema();
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  for (size_t partition : {1024u, 4096u, 16384u, 1u << 20}) {
    StreamingOptions options;
    options.base = base;
    options.partition_size = partition;
    auto got = StreamingParser::Parse(input, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->table.Equals(expected->table))
        << "partition " << partition;
    EXPECT_EQ(got->num_partitions,
              static_cast<int>((input.size() + partition - 1) / partition));
  }
}

TEST(StreamingTest, CarryOverSpansPartitionBoundary) {
  // Records straddling every partition boundary (partition smaller than a
  // record) must be reassembled via the carry-over.
  std::string input;
  for (int i = 0; i < 40; ++i) {
    input += "row" + std::to_string(i) + ",\"payload with, commas and\n"
             "a quoted newline number " + std::to_string(i) + "\"\n";
  }
  ParseOptions base;
  base.schema.AddField(Field("id", DataType::String()));
  base.schema.AddField(Field("text", DataType::String()));
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  StreamingOptions options;
  options.base = base;
  options.partition_size = 17;  // far below one record
  auto got = StreamingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST(StreamingTest, GiantRecordLargerThanPartition) {
  const std::string input =
      GenerateSkewed(9, 32 * 1024, /*giant_field_bytes=*/200 * 1024,
                     /*yelp_like=*/true);
  ParseOptions base;
  base.schema = YelpSchema();
  auto expected = SequentialParser::Parse(input, base);
  ASSERT_TRUE(expected.ok());

  StreamingOptions options;
  options.base = base;
  options.partition_size = 16 * 1024;  // the giant record spans many
  auto got = StreamingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->table.Equals(expected->table));
}

TEST(StreamingTest, ModeledOverlapBeatsSerialExecution) {
  const std::string input = GenerateTaxiLike(4, 256 * 1024);
  StreamingOptions options;
  options.base.schema = TaxiSchema();
  options.partition_size = 32 * 1024;
  auto got = StreamingParser::Parse(input, options);
  ASSERT_TRUE(got.ok());
  ASSERT_GT(got->num_partitions, 2);
  EXPECT_LT(got->modeled_end_to_end_seconds, got->modeled_serial_seconds);
  EXPECT_GT(got->modeled_end_to_end_seconds, 0);
}

TEST(StreamingTest, SinglePartitionWhenInputFits) {
  StreamingOptions options;
  options.base.schema.AddField(Field("a", DataType::String()));
  options.partition_size = 1 << 20;
  auto got = StreamingParser::Parse("x\ny\n", options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_partitions, 1);
  EXPECT_EQ(got->table.num_rows, 2);
}

TEST(StreamingTest, InvalidPartitionSize) {
  StreamingOptions options;
  options.partition_size = 0;
  EXPECT_FALSE(StreamingParser::Parse("a\n", options).ok());
}

TEST(StreamingTest, ParseFileMatchesInMemory) {
  const std::string path = "/tmp/parparaw_stream_file.csv";
  const std::string input = GenerateTaxiLike(12, 128 * 1024);
  ASSERT_TRUE(WriteStringToFile(path, input).ok());

  StreamingOptions options;
  options.base.schema = TaxiSchema();
  options.partition_size = 16 * 1024;
  auto in_memory = StreamingParser::Parse(input, options);
  ASSERT_TRUE(in_memory.ok());
  auto from_file = StreamingParser::ParseFile(path, options);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_TRUE(from_file->table.Equals(in_memory->table));
  EXPECT_EQ(from_file->num_partitions, in_memory->num_partitions);
  std::remove(path.c_str());
}

TEST(StreamingTest, ParseFileMissingAndEmpty) {
  StreamingOptions options;
  options.base.schema.AddField(Field("a", DataType::String()));
  EXPECT_FALSE(
      StreamingParser::ParseFile("/nonexistent/x.csv", options).ok());

  const std::string path = "/tmp/parparaw_stream_empty.csv";
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto result = StreamingParser::ParseFile(path, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows, 0);
  EXPECT_EQ(result->num_partitions, 0);
  std::remove(path.c_str());
}

TEST(StreamingTest, EmptyInput) {
  StreamingOptions options;
  options.base.schema.AddField(Field("a", DataType::String()));
  auto got = StreamingParser::Parse("", options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->table.num_rows, 0);
  EXPECT_EQ(got->num_partitions, 0);
}

}  // namespace
}  // namespace parparaw
