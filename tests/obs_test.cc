#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "core/parser.h"
#include "io/file.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "robust/failpoint.h"
#include "robust/reparse.h"
#include "robust/resource_guard.h"

namespace parparaw {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics under concurrent writers.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentWriters) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.counter");
  ASSERT_NE(counter, nullptr);

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) counter->Add(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncrements * 3);
}

TEST(MetricsTest, HistogramConcurrentWriters) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("test.hist");
  ASSERT_NE(hist, nullptr);

  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRecords; ++i) {
        hist->Record(t * kRecords + i + 1);  // values 1 .. kThreads*kRecords
      }
    });
  }
  for (auto& t : threads) t.join();

  const obs::HistogramSnapshot snap = hist->Snapshot();
  const int64_t n = int64_t{kThreads} * kRecords;
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n + 1) / 2);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, n);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
  // Quantiles are log2-resolution estimates but must be ordered and fall
  // inside the observed range.
  const int64_t p50 = snap.Quantile(0.5);
  const int64_t p99 = snap.Quantile(0.99);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, snap.max);
}

TEST(MetricsTest, GaugeTracksLevelAndMax) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(7);
  gauge->Set(42);
  gauge->Set(3);
  EXPECT_EQ(gauge->Value(), 3);
  EXPECT_EQ(gauge->Max(), 42);
}

TEST(MetricsTest, KindMismatchReturnsNull) {
  obs::MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
}

TEST(MetricsTest, SameNameReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("c"), registry.GetCounter("c"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsTest, DisabledRegistryHelpersAreNoOps) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  registry.AddCounter("c", 5);
  registry.RecordHistogram("h", 5);
  // The gated helpers must not even create the instruments.
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingPointersValid) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Histogram* hist = registry.GetHistogram("h");
  counter->Add(9);
  hist->Record(100);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(hist->Snapshot().count, 0);
  counter->Add(2);  // the same pointer keeps working after Reset
  EXPECT_EQ(counter->Value(), 2);
}

TEST(MetricsTest, PoolCountersRecordSubmittedTasks) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.SetEnabled(true);
  obs::Counter* submitted = global.GetCounter("pool.tasks_submitted");
  obs::Counter* executed = global.GetCounter("pool.tasks_executed");
  const int64_t submitted_before = submitted->Value();
  const int64_t executed_before = executed->Value();
  {
    // An explicit 4-worker pool: ParallelForEach must fan out regardless
    // of the machine's core count.
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    ParallelForEach(&pool, 0, 1000,
                    [&](int64_t i) { sum.fetch_add(i); });
    pool.WaitIdle();
    EXPECT_EQ(sum.load(), 999 * 1000 / 2);
  }
  EXPECT_GE(submitted->Value() - submitted_before, 4);
  EXPECT_EQ(submitted->Value() - submitted_before,
            executed->Value() - executed_before);
  global.SetEnabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Tracer: span recording, nesting, concurrent writers.
// ---------------------------------------------------------------------------

TEST(TracerTest, SpansRecordNameCategoryBytesAndThread) {
  obs::Tracer tracer;
  {
    obs::TraceSpan span(&tracer, "outer", "test", 123);
  }
  const std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].bytes, 123);
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].tid, obs::ThisThreadTraceId());
}

TEST(TracerTest, NestedSpansAreContainedAndDepthIncreases) {
  obs::Tracer tracer;
  {
    obs::TraceSpan outer(&tracer, "outer", "test");
    {
      obs::TraceSpan mid(&tracer, "mid", "test");
      obs::TraceSpan inner(&tracer, "inner", "test");
    }
  }
  std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Events() sorts by begin timestamp: outer, mid, inner.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  // Interval containment: child begins at/after parent begin, ends at/
  // before parent end.
  for (int child = 1; child < 3; ++child) {
    EXPECT_GE(events[child].ts_ns, events[child - 1].ts_ns);
    EXPECT_LE(events[child].ts_ns + events[child].dur_ns,
              events[child - 1].ts_ns + events[child - 1].dur_ns);
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer(/*enabled=*/false);
  {
    obs::TraceSpan span(&tracer, "x", "test");
  }
  {
    obs::TraceSpan null_span(nullptr, "y", "test");
  }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, ConcurrentSpansFromManyThreads) {
  obs::Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSpans; ++i) {
        obs::TraceSpan span(&tracer, "work", "test", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.Events().size(),
            static_cast<size_t>(kThreads) * kSpans);
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON schema check: a minimal recursive-descent JSON parser
// (no external dependency) validates the exported document's structure.
// ---------------------------------------------------------------------------

class MiniJson {
 public:
  // Very small JSON reader: parses and returns true when `text` is a
  // syntactically valid JSON value covering the subset the exporter emits
  // (objects, arrays, strings with escapes, numbers). `Visit` callbacks
  // collect the trace events' keys.
  struct Value;
  using Object = std::vector<std::pair<std::string, Value>>;

  struct Value {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
    double number = 0;
    std::string string;
    std::vector<Value> array;
    Object object;

    const Value* Find(const std::string& key) const {
      for (const auto& [k, v] : object) {
        if (k == key) return &v;
      }
      return nullptr;
    }
  };

  static bool Parse(const std::string& text, Value* out) {
    MiniJson parser(text);
    if (!parser.ParseValue(out)) return false;
    parser.SkipSpace();
    return parser.pos_ == text.size();
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            pos_ += 4;
            out->push_back('?');  // code point value irrelevant here
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Value::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        Value value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Value::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        Value value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = Value::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = Value::kBool;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = Value::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = Value::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = Value::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(TracerTest, ChromeTraceJsonMatchesSchema) {
  // Produce a real trace: an instrumented parse plus a nested test span
  // whose name needs JSON escaping.
  obs::Tracer tracer;
  ParseOptions options;
  options.tracer = &tracer;
  {
    obs::TraceSpan escaped(&tracer, "quote\"and\\slash\nnewline", "test");
    auto parsed = Parser::Parse("a,b\n1,2\nx,\"y,z\"\n", options);
    ASSERT_TRUE(parsed.ok());
  }
  const std::string json = tracer.ChromeTraceJson();

  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(json, &root)) << json;
  ASSERT_EQ(root.kind, MiniJson::Value::kObject);

  const MiniJson::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, MiniJson::Value::kArray);
  ASSERT_GE(events->array.size(), 7u);  // test span + parse + 6 steps

  const MiniJson::Value* unit = root.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->kind, MiniJson::Value::kString);

  bool saw_parse_span = false;
  bool saw_escaped_span = false;
  for (const MiniJson::Value& event : events->array) {
    ASSERT_EQ(event.kind, MiniJson::Value::kObject);
    // Required fields of the Trace Event Format, with their types.
    const MiniJson::Value* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->kind, MiniJson::Value::kString);
    const MiniJson::Value* cat = event.Find("cat");
    ASSERT_NE(cat, nullptr);
    EXPECT_EQ(cat->kind, MiniJson::Value::kString);
    const MiniJson::Value* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");  // complete events
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const MiniJson::Value* field = event.Find(key);
      ASSERT_NE(field, nullptr) << key;
      EXPECT_EQ(field->kind, MiniJson::Value::kNumber) << key;
      if (std::string(key) == "ts" || std::string(key) == "dur") {
        EXPECT_GE(field->number, 0.0) << key;
      }
    }
    const MiniJson::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_EQ(args->kind, MiniJson::Value::kObject);
    const MiniJson::Value* depth = args->Find("depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->kind, MiniJson::Value::kNumber);
    if (name->string == "parse") {
      saw_parse_span = true;
      const MiniJson::Value* bytes = args->Find("bytes");
      ASSERT_NE(bytes, nullptr);
      EXPECT_EQ(bytes->number, 16.0);  // strlen of the parsed input
    }
    if (name->string == "quote\"and\\slash\nnewline") {
      saw_escaped_span = true;
    }
  }
  EXPECT_TRUE(saw_parse_span);
  EXPECT_TRUE(saw_escaped_span);
}

// ---------------------------------------------------------------------------
// Pipeline integration: an instrumented parse populates the taxonomy.
// ---------------------------------------------------------------------------

TEST(ObsIntegrationTest, InstrumentedParsePopulatesStepHistograms) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  ParseOptions options;
  options.metrics = &registry;
  options.tracer = &tracer;
  std::string csv;
  for (int i = 0; i < 500; ++i) csv += "1,alice,10.5\n";
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->table.num_rows, 500);

  for (const char* hist :
       {"step.context.parse_us", "step.context.scan_us", "step.bitmap_us",
        "step.offset_us", "step.tag.count_us", "step.tag.scan_us",
        "step.tag.write_us", "step.partition_us", "step.css_index_us",
        "step.convert_us", "parse.total_us"}) {
    EXPECT_GE(registry.GetHistogram(hist)->Snapshot().count, 1) << hist;
  }
  EXPECT_EQ(registry.GetCounter("parse.runs")->Value(), 1);
  EXPECT_EQ(registry.GetCounter("parse.bytes")->Value(),
            static_cast<int64_t>(csv.size()));
  EXPECT_EQ(registry.GetCounter("parse.out_rows")->Value(), 500);

  // Every pipeline step shows up as a span.
  std::vector<std::string> names;
  for (const obs::TraceEvent& e : tracer.Events()) names.push_back(e.name);
  for (const char* span :
       {"parse", "step.context", "step.bitmap", "step.offset", "step.tag",
        "step.partition", "step.convert", "step.css_index"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), span), names.end())
        << span;
  }
}

TEST(ObsIntegrationTest, UninstrumentedParseTouchesNoSinks) {
  // Null sinks (the default): a parse must not create instruments in the
  // global registry or events in the global tracer even when they exist.
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  obs::Tracer& tracer = obs::Tracer::Global();
  const bool metrics_enabled = global.enabled();
  const bool tracer_enabled = tracer.enabled();
  global.SetEnabled(false);
  tracer.SetEnabled(false);
  tracer.Clear();
  ParseOptions options;
  auto parsed = Parser::Parse("a,b\n1,2\n", options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(tracer.Events().empty());
  global.SetEnabled(metrics_enabled);
  tracer.SetEnabled(tracer_enabled);
}

// ---------------------------------------------------------------------------
// robust.* metric taxonomy (see docs/robustness.md).
// ---------------------------------------------------------------------------

TEST(ObsRobustTest, FailpointHitsAndFiresAreCounted) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.SetEnabled(true);
  const int64_t hits0 = global.GetCounter("robust.failpoint_hits")->Value();
  const int64_t fires0 = global.GetCounter("robust.failpoint_fires")->Value();

  auto& registry = robust::FailpointRegistry::Instance();
  registry.Arm("obs.test", robust::CountTrigger(2));
  for (int i = 0; i < 5; ++i) (void)robust::CheckFailpoint("obs.test");
  registry.DisarmAll();

  EXPECT_EQ(global.GetCounter("robust.failpoint_hits")->Value() - hits0, 5);
  EXPECT_EQ(global.GetCounter("robust.failpoint_fires")->Value() - fires0, 2);
  global.SetEnabled(was_enabled);
}

TEST(ObsRobustTest, IoRetriesAndBudgetClampsAreCounted) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  const bool was_enabled = global.enabled();
  global.SetEnabled(true);
  const int64_t retries0 = global.GetCounter("robust.io_retries")->Value();
  const int64_t clamps0 = global.GetCounter("robust.budget_clamps")->Value();

  // A transient read fault forces the retry loop through its backoff.
  const std::string path = "/tmp/parparaw_obs_robust.tmp";
  ASSERT_TRUE(WriteStringToFile(path, "a,b\n1,2\n").ok());
  auto& registry = robust::FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("io.read=count:1:transient").ok());
  ASSERT_TRUE(ReadFileToString(path).ok());
  registry.DisarmAll();
  std::remove(path.c_str());
  EXPECT_GE(global.GetCounter("robust.io_retries")->Value() - retries0, 1);

  // A budget-driven partition clamp is observable.
  (void)robust::ClampPartitionSizeForBudget(1 << 20, 16 * 1024);
  EXPECT_EQ(global.GetCounter("robust.budget_clamps")->Value() - clamps0, 1);
  global.SetEnabled(was_enabled);
}

TEST(ObsRobustTest, QuarantineAndReparseAreCounted) {
  obs::MetricsRegistry registry;  // private, enabled
  ParseOptions options;
  options.schema.AddField(Field("n", DataType::Int64()));
  options.schema.AddField(Field("s", DataType::String()));
  options.error_policy = robust::ErrorPolicy::kQuarantine;
  options.metrics = &registry;
  auto parsed = Parser::Parse("1,a\nbad,b\n3,c\n", options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(registry.GetCounter("robust.quarantined_rows")->Value(), 1);

  auto recovered = robust::ReparseQuarantined(options, &*parsed);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(registry.GetCounter("robust.reparse_attempted")->Value(), 1);
  // 'bad' is unrecoverable; the attempt is counted, the recovery is not.
  EXPECT_EQ(registry.GetCounter("robust.reparse_recovered")->Value(), 0);
}

}  // namespace
}  // namespace parparaw
