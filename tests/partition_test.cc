#include <gtest/gtest.h>

#include "core/css_index.h"
#include "test_util.h"

namespace parparaw {
namespace {

TEST(CssIndexTest, RecordTagModeRunsAndOffsets) {
  // Figure 5's index: column 1 (decimals) has fields 199.99 and 19.99.
  const std::string input =
      "1941,199.99,\"Bookcase\"\n1938,19.99,\"Frame\"\n";
  ParseOptions options;
  options.chunk_size = 7;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());

  std::vector<FieldEntry> fields;
  ASSERT_TRUE(BuildCssIndex(h->state, 1, &fields).ok());
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].row, 0);
  EXPECT_EQ(fields[0].length, 6);  // "199.99"
  EXPECT_EQ(fields[1].row, 1);
  EXPECT_EQ(fields[1].length, 5);  // "19.99"
  // Offsets are consecutive within the column's CSS.
  EXPECT_EQ(fields[1].offset, fields[0].offset + 6);
  const std::string v0(
      h->state.css.begin() + fields[0].offset,
      h->state.css.begin() + fields[0].offset + fields[0].length);
  EXPECT_EQ(v0, "199.99");
}

TEST(CssIndexTest, RecordTagModeSkipsEmptyFields) {
  const std::string input = "a,1\nb,\nc,3\n";
  ParseOptions options;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  std::vector<FieldEntry> fields;
  ASSERT_TRUE(BuildCssIndex(h->state, 1, &fields).ok());
  // The empty field of row 1 produces no run.
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].row, 0);
  EXPECT_EQ(fields[1].row, 2);
}

TEST(CssIndexTest, RecordTagModeTrailingEmptyFieldOfLastRecord) {
  // Regression: `a,b,` — the last record's trailing empty field ends at the
  // final newline or at the virtual record end (EOF with no newline). The
  // record must still count three columns while the empty field produces no
  // run, so conversion falls back to the column default.
  for (TransposeMode mode :
       {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
    for (const char* input : {"a,b,\n", "a,b,"}) {
      ParseOptions options;
      options.transpose_mode = mode;
      auto h = StepHarness::Make(input, options);
      ASSERT_TRUE(h->RunThroughPartition().ok());
      ASSERT_EQ(h->state.record_column_counts.size(), 1u) << input;
      EXPECT_EQ(h->state.record_column_counts[0], 3u) << input;
      std::vector<FieldEntry> fields;
      ASSERT_TRUE(BuildCssIndex(h->state, 2, &fields).ok());
      EXPECT_TRUE(fields.empty()) << input;
      // The non-empty sibling columns are unaffected.
      ASSERT_TRUE(BuildCssIndex(h->state, 0, &fields).ok());
      ASSERT_EQ(fields.size(), 1u) << input;
      EXPECT_EQ(fields[0].length, 1) << input;
    }
  }
}

TEST(CssIndexTest, LoneDelimiterRecordHasNoRuns) {
  // `,` as the only record: two empty fields, zero kept symbols. Both
  // transpose modes agree that no column has a partition (num_partitions
  // is 0 when the CSS is empty) and every index lookup is empty.
  for (TransposeMode mode :
       {TransposeMode::kSymbolSort, TransposeMode::kFieldGather}) {
    for (const char* input : {",\n", ","}) {
      ParseOptions options;
      options.transpose_mode = mode;
      auto h = StepHarness::Make(input, options);
      ASSERT_TRUE(h->RunThroughPartition().ok());
      ASSERT_EQ(h->state.record_column_counts.size(), 1u) << input;
      EXPECT_EQ(h->state.record_column_counts[0], 2u) << input;
      std::vector<FieldEntry> fields;
      for (uint32_t col = 0; col < 2; ++col) {
        ASSERT_TRUE(BuildCssIndex(h->state, col, &fields).ok());
        EXPECT_TRUE(fields.empty()) << input << " col " << col;
      }
    }
  }
}

TEST(CssIndexTest, InlineModeIncludesEmptyFields) {
  const std::string input = "a,1\nb,\nc,3\n";
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  std::vector<FieldEntry> fields;
  ASSERT_TRUE(BuildCssIndex(h->state, 1, &fields).ok());
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1].row, 1);
  EXPECT_EQ(fields[1].length, 0);  // empty field present with zero symbols
}

TEST(CssIndexTest, InlineModeInconsistentColumnsError) {
  const std::string input = "a,1\nonlyone\nc,3\n";
  ParseOptions options;
  options.tagging_mode = TaggingMode::kInlineTerminated;
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  std::vector<FieldEntry> fields;
  const Status st = BuildCssIndex(h->state, 1, &fields);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CssIndexTest, VectorModeMatchesInlineMode) {
  const std::string input = "aa,bb\ncc,dd\nee,ff\n";
  ParseOptions inline_options;
  inline_options.tagging_mode = TaggingMode::kInlineTerminated;
  auto hi = StepHarness::Make(input, inline_options);
  ASSERT_TRUE(hi->RunThroughPartition().ok());

  ParseOptions vector_options;
  vector_options.tagging_mode = TaggingMode::kVectorDelimited;
  auto hv = StepHarness::Make(input, vector_options);
  ASSERT_TRUE(hv->RunThroughPartition().ok());

  for (uint32_t col = 0; col < 2; ++col) {
    std::vector<FieldEntry> fi, fv;
    ASSERT_TRUE(BuildCssIndex(hi->state, col, &fi).ok());
    ASSERT_TRUE(BuildCssIndex(hv->state, col, &fv).ok());
    ASSERT_EQ(fi.size(), fv.size());
    for (size_t k = 0; k < fi.size(); ++k) {
      EXPECT_EQ(fi[k].row, fv[k].row);
      EXPECT_EQ(fi[k].length, fv[k].length);
    }
  }
}

TEST(CssIndexTest, ColumnBeyondPartitionsIsEmpty) {
  ParseOptions options;
  auto h = StepHarness::Make("a,b\n", options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  std::vector<FieldEntry> fields;
  ASSERT_TRUE(BuildCssIndex(h->state, 7, &fields).ok());
  EXPECT_TRUE(fields.empty());
}

TEST(CollectPositionsTest, MatchesSequentialFilter) {
  ThreadPool pool(4);
  const int64_t n = 100000;
  std::vector<int64_t> got;
  CollectPositions(&pool, n, [](int64_t i) { return i % 7 == 3; }, &got);
  std::vector<int64_t> expected;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 7 == 3) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);
}

TEST(CollectPositionsTest, EmptyAndAll) {
  ThreadPool pool(2);
  std::vector<int64_t> got;
  CollectPositions(&pool, 0, [](int64_t) { return true; }, &got);
  EXPECT_TRUE(got.empty());
  CollectPositions(&pool, 5, [](int64_t) { return true; }, &got);
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  CollectPositions(&pool, 5, [](int64_t) { return false; }, &got);
  EXPECT_TRUE(got.empty());
}

class PartitionChunkSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionChunkSweep, HistogramInvariantUnderChunkSize) {
  const std::string input =
      "aaa,b,cc\ndddd,ee,f\n,gg,\nhh,i,jjjj\n";
  ParseOptions options;
  options.chunk_size = GetParam();
  auto h = StepHarness::Make(input, options);
  ASSERT_TRUE(h->RunThroughPartition().ok());
  ASSERT_EQ(h->state.column_histogram.size(), 3u);
  EXPECT_EQ(h->state.column_histogram[0], 3u + 4u + 0u + 2u);
  EXPECT_EQ(h->state.column_histogram[1], 1u + 2u + 2u + 1u);
  EXPECT_EQ(h->state.column_histogram[2], 2u + 1u + 0u + 4u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, PartitionChunkSweep,
                         ::testing::Values(1, 3, 5, 9, 31));

}  // namespace
}  // namespace parparaw
