#include <gtest/gtest.h>

#include <random>

#include "mfira/mfira.h"

namespace parparaw {
namespace {

TEST(MfiraTest, Fig8ParameterDerivation) {
  // The exact example of Fig. 8: 10 items of 5 bits each.
  using Fig8 = Mfira<10, 5>;
  EXPECT_EQ(Fig8::kAvailBitsPerFragment, 3);  // floor(32 / 10)
  EXPECT_EQ(Fig8::kFragmentBits, 2);          // 2^floor(log2 3)
  EXPECT_EQ(Fig8::kNumFragments, 3);          // ceil(5 / 2)
}

TEST(MfiraTest, Fig8RoundTrip) {
  // The values from Fig. 8's logical view.
  const uint32_t values[10] = {5, 7, 31, 20, 10, 0, 26, 3, 15, 16};
  Mfira<10, 5> array;
  for (int i = 0; i < 10; ++i) array.Set(i, values[i]);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(array.Get(i), values[i]) << i;
}

TEST(MfiraTest, SingleFragmentWhenItemFitsOneFragment) {
  using Small = Mfira<8, 4>;  // 4 avail bits -> k = 4 -> 1 fragment
  EXPECT_EQ(Small::kFragmentBits, 4);
  EXPECT_EQ(Small::kNumFragments, 1);
  Small array;
  for (int i = 0; i < 8; ++i) array.Set(i, static_cast<uint32_t>(15 - i));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(array.Get(i), static_cast<uint32_t>(15 - i));
}

TEST(MfiraTest, OverwriteDoesNotDisturbNeighbours) {
  Mfira<10, 5> array;
  for (int i = 0; i < 10; ++i) array.Set(i, static_cast<uint32_t>(i));
  array.Set(4, 31);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(array.Get(i), i == 4 ? 31u : static_cast<uint32_t>(i));
  }
  array.Set(4, 0);
  EXPECT_EQ(array.Get(4), 0u);
  EXPECT_EQ(array.Get(3), 3u);
  EXPECT_EQ(array.Get(5), 5u);
}

TEST(MfiraTest, ValueMaskedToItemWidth) {
  Mfira<4, 3> array;  // values 0-7
  array.Set(2, 0xFFFFFFFF);
  EXPECT_EQ(array.Get(2), 7u);
  EXPECT_EQ(array.Get(1), 0u);
  EXPECT_EQ(array.Get(3), 0u);
}

TEST(MfiraTest, StateVectorShape16x4) {
  // The shape backing a 16-state state-transition vector.
  using StateVec = Mfira<16, 4>;
  EXPECT_EQ(StateVec::kFragmentBits, 2);
  EXPECT_EQ(StateVec::kNumFragments, 2);
  StateVec vec;
  std::mt19937 rng(1);
  uint32_t expected[16];
  for (int i = 0; i < 16; ++i) {
    expected[i] = rng() % 16;
    vec.Set(i, expected[i]);
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(vec.Get(i), expected[i]);
}

TEST(MfiraTest, EqualityComparesLogicalContents) {
  Mfira<10, 5> a, b;
  for (int i = 0; i < 10; ++i) {
    a.Set(i, static_cast<uint32_t>(i * 3 % 32));
    b.Set(i, static_cast<uint32_t>(i * 3 % 32));
  }
  EXPECT_TRUE(a == b);
  b.Set(9, 1);
  EXPECT_FALSE(a == b);
}

template <typename T>
class MfiraRandomTest : public ::testing::Test {};

struct Shape10x5 {
  static constexpr int kItems = 10;
  static constexpr int kBits = 5;
};
struct Shape32x1 {
  static constexpr int kItems = 32;
  static constexpr int kBits = 1;
};
struct Shape4x32 {
  static constexpr int kItems = 4;
  static constexpr int kBits = 32;
};
struct Shape16x8 {
  static constexpr int kItems = 16;
  static constexpr int kBits = 8;
};
struct Shape1x17 {
  static constexpr int kItems = 1;
  static constexpr int kBits = 17;
};

using Shapes =
    ::testing::Types<Shape10x5, Shape32x1, Shape4x32, Shape16x8, Shape1x17>;
TYPED_TEST_SUITE(MfiraRandomTest, Shapes);

TYPED_TEST(MfiraRandomTest, RandomisedRoundTripAgainstReferenceArray) {
  constexpr int kItems = TypeParam::kItems;
  constexpr int kBits = TypeParam::kBits;
  Mfira<kItems, kBits> array;
  uint32_t reference[kItems] = {};
  std::mt19937_64 rng(kItems * 131 + kBits);
  const uint32_t mask =
      kBits >= 32 ? 0xFFFFFFFFu : ((1u << kBits) - 1u);
  for (int step = 0; step < 2000; ++step) {
    const int i = static_cast<int>(rng() % kItems);
    const uint32_t value = static_cast<uint32_t>(rng()) & mask;
    array.Set(i, value);
    reference[i] = value;
    const int j = static_cast<int>(rng() % kItems);
    ASSERT_EQ(array.Get(j), reference[j]) << "step " << step;
  }
}

}  // namespace
}  // namespace parparaw
