#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/reader.h"
#include "core/parser.h"
#include "dfa/formats.h"
#include "dfa/sniffer.h"
#include "dialect/dialect.h"
#include "exec/executor.h"
#include "json/json_lines.h"
#include "obs/metrics.h"
#include "workload/generators.h"

// The dialect compiler's correctness story (see docs/dialects.md): every
// built-in format has a DialectSpec twin whose compiled + minimised
// automaton is *proven* language- and flag-equivalent to the hand-written
// DFA by product construction — a failed check yields a concrete witness
// input, a passing check covers every input. On top of the proof, packed
// twins are swept differentially (same table bit for bit), and the novel
// dialects the compiler unlocks — multi-byte record delimiters, backslash
// escapes, fixed-width fields — are checked scalar vs best-SIMD and serial
// vs pipelined.

namespace parparaw {
namespace {

using dialect::CheckEquivalent;
using dialect::CompileDialect;
using dialect::CompiledDialect;
using dialect::DialectSpec;
using dialect::EquivalenceResult;
using dialect::EscapeStyle;
using dialect::FromFormat;
using dialect::Minimize;

DialectSpec CsvTwinSpec() {
  DialectSpec spec;
  spec.name = "csv-twin";
  return spec;  // defaults == RFC 4180: ',', "\n", '"', doubled, strict
}

DialectSpec TsvEscapeTwinSpec() {
  DialectSpec spec;
  spec.name = "tsv-escape-twin";
  spec.field_delimiter = '\t';
  spec.escape_style = EscapeStyle::kBackslash;
  spec.escape_char = '\\';
  spec.strict_quotes = false;
  return spec;
}

DialectSpec ExtendedLogTwinSpec() {
  DialectSpec spec;
  spec.name = "extended-log-twin";
  spec.field_delimiter = ' ';
  spec.comment = '#';
  spec.skip_empty_lines = true;
  spec.strict_quotes = false;
  return spec;
}

DialectSpec JsonLinesTwinSpec() {
  DialectSpec spec;
  spec.name = "jsonl-twin";
  spec.field_delimiter = 0;  // single-column records
  spec.escape_style = EscapeStyle::kBackslash;
  spec.escape_char = '\\';
  spec.verbatim_quotes = true;
  spec.skip_empty_lines = true;
  return spec;
}

/// Compiles `spec`, minimises it, and proves it equivalent to `builtin`.
void ExpectTwinEquivalent(const DialectSpec& spec, const Format& builtin) {
  auto wide = CompileDialect(spec);
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  auto minimized = Minimize(*wide, nullptr);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  const EquivalenceResult proof =
      CheckEquivalent(*minimized, FromFormat(builtin));
  EXPECT_TRUE(proof.equivalent)
      << spec.name << " vs " << builtin.name << ": " << proof.detail
      << " (witness: \"" << proof.witness << "\")";
  // Minimisation never grows the automaton, and the built-ins are already
  // minimal — the compiled twin must land on exactly their state count.
  EXPECT_LE(minimized->num_states, wide->num_states);
  EXPECT_EQ(minimized->num_states, builtin.dfa.num_states());
}

TEST(DialectEquivalenceTest, CsvTwinProvedEquivalentToRfc4180) {
  ASSERT_NO_FATAL_FAILURE(
      ExpectTwinEquivalent(CsvTwinSpec(), *Rfc4180Format()));
}

TEST(DialectEquivalenceTest, TsvEscapeTwinProvedEquivalentToDsv) {
  DsvOptions options;
  options.field_delimiter = '\t';
  options.escape = '\\';
  options.strict_quotes = false;
  ASSERT_NO_FATAL_FAILURE(
      ExpectTwinEquivalent(TsvEscapeTwinSpec(), *DsvFormat(options)));
}

TEST(DialectEquivalenceTest, ExtendedLogTwinProvedEquivalentToBuiltin) {
  ASSERT_NO_FATAL_FAILURE(
      ExpectTwinEquivalent(ExtendedLogTwinSpec(), *ExtendedLogFormat()));
}

TEST(DialectEquivalenceTest, JsonLinesTwinProvedEquivalentToBuiltin) {
  // The JSONL built-in has no invalid trap — every byte is legal. The
  // compiled twin's INV state is unreachable and pruning drops it, so the
  // proof runs over exactly the four JSON Lines states.
  ASSERT_NO_FATAL_FAILURE(
      ExpectTwinEquivalent(JsonLinesTwinSpec(), *JsonLinesFormat()));
}

TEST(DialectEquivalenceTest, InequivalentDialectsYieldConcreteWitness) {
  auto csv = Minimize(*CompileDialect(CsvTwinSpec()), nullptr);
  DialectSpec semicolon = CsvTwinSpec();
  semicolon.name = "semicolon";
  semicolon.field_delimiter = ';';
  auto other = Minimize(*CompileDialect(semicolon), nullptr);
  ASSERT_TRUE(csv.ok() && other.ok());

  const EquivalenceResult verdict = CheckEquivalent(*csv, *other);
  ASSERT_FALSE(verdict.equivalent);
  ASSERT_FALSE(verdict.detail.empty());
  ASSERT_FALSE(verdict.witness.empty());
  // The witness is a machine-checked counterexample: replaying it, the two
  // automata must visibly disagree on the final byte's flags (or on the
  // acceptance of the state it reaches).
  const std::string& w = verdict.witness;
  const auto* head = reinterpret_cast<const uint8_t*>(w.data());
  const int end_a = csv->Run(csv->start, head, w.size() - 1);
  const int end_b = other->Run(other->start, head, w.size() - 1);
  const uint8_t last = static_cast<uint8_t>(w.back());
  const bool flags_differ =
      csv->FlagsFor(end_a, last) != other->FlagsFor(end_b, last);
  const bool acceptance_differs =
      (csv->accepting[csv->Next(end_a, last)] != 0) !=
      (other->accepting[other->Next(end_b, last)] != 0);
  const bool mid_differs =
      (csv->mid_record[csv->Next(end_a, last)] != 0) !=
      (other->mid_record[other->Next(end_b, last)] != 0);
  EXPECT_TRUE(flags_differ || acceptance_differs || mid_differs)
      << "witness \"" << w << "\" does not reproduce: " << verdict.detail;
}

// --- packed-format differential: the compiled twin drives the full
// parallel pipeline and must produce the same table as the built-in. ---

std::string TwinInputForSeed(uint8_t field_delimiter, uint64_t seed) {
  RandomCsvOptions options;
  options.num_records = 3 + static_cast<int>(seed % 16);
  options.num_columns = 1 + static_cast<int>(seed % 5);
  options.quote_probability = (seed % 5) * 0.2;
  options.embedded_delimiter_probability = (seed % 3) * 0.3;
  options.escaped_quote_probability = (seed % 4) * 0.25;
  options.trailing_newline = (seed % 3) != 0;
  std::string input = GenerateRandomCsv(seed, options);
  if (field_delimiter != ',') {
    for (char& ch : input) {
      if (ch == ',') ch = static_cast<char>(field_delimiter);
    }
  }
  return input;
}

TEST(DialectEquivalenceTest, PackedTwinsParseBitIdenticalToBuiltins) {
  struct Twin {
    DialectSpec spec;
    Format builtin;
  };
  std::vector<Twin> twins;
  twins.push_back({CsvTwinSpec(), *Rfc4180Format()});
  {
    DsvOptions tsv;
    tsv.field_delimiter = '\t';
    tsv.escape = '\\';
    tsv.strict_quotes = false;
    twins.push_back({TsvEscapeTwinSpec(), *DsvFormat(tsv)});
  }
  twins.push_back({ExtendedLogTwinSpec(), *ExtendedLogFormat()});

  for (const Twin& twin : twins) {
    for (uint64_t seed = 0; seed < 64; ++seed) {
      const std::string input =
          twin.spec.name == "extended-log-twin"
              ? GenerateLogLike(seed, 256 + seed % 256)
              : TwinInputForSeed(twin.spec.field_delimiter, seed);

      ParseOptions with_builtin;
      with_builtin.format = twin.builtin;
      const Result<ParseOutput> reference = Parser::Parse(input, with_builtin);

      ParseOptions with_dialect;
      with_dialect.dialect = twin.spec;
      const Result<ParseOutput> got = Parser::Parse(input, with_dialect);

      const std::string context =
          twin.spec.name + " seed " + std::to_string(seed);
      ASSERT_EQ(reference.ok(), got.ok()) << context;
      if (!reference.ok()) {
        ASSERT_EQ(reference.status().ToString(), got.status().ToString())
            << context;
        continue;
      }
      ASSERT_TRUE(reference->table.Equals(got->table)) << context;
      ASSERT_EQ(reference->min_columns, got->min_columns) << context;
      ASSERT_EQ(reference->max_columns, got->max_columns) << context;
    }
  }
}

// --- the novel dialects the compiler unlocks (ISSUE acceptance) ---

/// Parses `input` under `spec` four ways — scalar vs best-SIMD kernels,
/// serial Parser vs pipelined executor — and checks all four agree.
void ExpectAllPathsAgree(const DialectSpec& spec, const std::string& input,
                         Table* out) {
  ParseOptions scalar;
  scalar.dialect = spec;
  scalar.kernel = simd::KernelKind::kScalar;
  auto scalar_result = Parser::Parse(input, scalar);
  ASSERT_TRUE(scalar_result.ok()) << scalar_result.status().ToString();

  ParseOptions vectorized;
  vectorized.dialect = spec;
  vectorized.kernel = simd::KernelKind::kSimd;
  auto simd_result = Parser::Parse(input, vectorized);
  ASSERT_TRUE(simd_result.ok()) << simd_result.status().ToString();
  ASSERT_TRUE(scalar_result->table.Equals(simd_result->table))
      << spec.name << ": scalar vs SIMD";

  exec::PipelineExecutor executor;
  exec::ExecOptions pipelined;
  pipelined.base.dialect = spec;
  pipelined.partition_size = 128;  // several partitions in flight
  auto exec_result = executor.IngestBuffer(input, pipelined);
  ASSERT_TRUE(exec_result.ok()) << exec_result.status().ToString();
  ASSERT_TRUE(scalar_result->table.Equals(exec_result->table))
      << spec.name << ": serial vs pipelined";

  if (out != nullptr) *out = std::move(scalar_result->table);
}

TEST(DialectEquivalenceTest, MultiByteRecordDelimiterDialect) {
  DialectSpec spec;
  spec.name = "crlf-strict";
  spec.record_delimiter = "\r\n";

  // Within the register budget: CSV's six states plus one chain state.
  auto compiled = dialect::Compile(spec);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->within_budget);
  EXPECT_LE(compiled->minimized_states, kMaxDfaStates);

  const std::string input =
      "a,b,c\r\n"
      "\"quoted \r\n newline\",2,3\r\n"
      "x,,z\r\n";
  Table table;
  ASSERT_NO_FATAL_FAILURE(ExpectAllPathsAgree(spec, input, &table));
  ASSERT_EQ(table.num_rows, 3);
  ASSERT_EQ(static_cast<int>(table.columns.size()), 3);
  EXPECT_EQ(table.columns[0].StringValue(1), "quoted \r\n newline");
  EXPECT_EQ(table.columns[2].StringValue(2), "z");

  // Strict matching: a bare '\r' outside quotes is a broken prefix, so
  // validation rejects it instead of guessing.
  ParseOptions validate;
  validate.dialect = spec;
  validate.validate = true;
  auto broken = Parser::Parse("a,b\rc\r\n", validate);
  EXPECT_FALSE(broken.ok());
}

TEST(DialectEquivalenceTest, BackslashEscapeDialect) {
  DialectSpec spec;
  spec.name = "semicolon-backslash";
  spec.field_delimiter = ';';
  spec.escape_style = EscapeStyle::kBackslash;
  spec.escape_char = '\\';
  spec.strict_quotes = false;

  auto compiled = dialect::Compile(spec);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->within_budget);

  const std::string input =
      "one;\"two \\\" escaped\";three\n"
      "\"semi \\; colon\";b;c\n";
  Table table;
  ASSERT_NO_FATAL_FAILURE(ExpectAllPathsAgree(spec, input, &table));
  ASSERT_EQ(table.num_rows, 2);
  ASSERT_EQ(static_cast<int>(table.columns.size()), 3);
  EXPECT_EQ(table.columns[1].StringValue(0), "two \" escaped");
  EXPECT_EQ(table.columns[0].StringValue(1), "semi ; colon");
}

TEST(DialectEquivalenceTest, FixedWidthDialectWithinBudget) {
  DialectSpec spec;
  spec.name = "fixed-3-2-4";
  spec.fixed_widths = {3, 2, 4};
  spec.quote = 0;  // fixed-width fields have no quoting layer

  // 9 position states + EOL + INV = 11 states: packs into the Dfa.
  auto compiled = dialect::Compile(spec);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->within_budget);
  EXPECT_EQ(compiled->minimized_states, 11);

  const std::string input =
      "abc12defg\n"
      "xyz99    \n"
      "  c 7hijk\n";
  Table table;
  ASSERT_NO_FATAL_FAILURE(ExpectAllPathsAgree(spec, input, &table));
  ASSERT_EQ(table.num_rows, 3);
  ASSERT_EQ(static_cast<int>(table.columns.size()), 3);
  // Every byte of a field belongs to its value — including the last one
  // (the inclusive-boundary SymbolFlags shape).
  EXPECT_EQ(table.columns[0].StringValue(0), "abc");
  EXPECT_EQ(table.columns[1].StringValue(0), "12");
  EXPECT_EQ(table.columns[2].StringValue(0), "defg");
  EXPECT_EQ(table.columns[1].StringValue(2), " 7");
  EXPECT_EQ(table.columns[2].StringValue(1), "    ");

  // A record of the wrong width is invalid input under validation.
  ParseOptions validate;
  validate.dialect = spec;
  validate.validate = true;
  EXPECT_FALSE(Parser::Parse("abc12defgh\n", validate).ok());
  EXPECT_FALSE(Parser::Parse("abc12def\n", validate).ok());
}

TEST(DialectEquivalenceTest, OverBudgetDialectFallsBackToScalarWalk) {
  DialectSpec spec;
  spec.name = "fixed-wide";
  spec.fixed_widths = {10, 10};  // 20 positions + EOL + INV > 16 states
  spec.quote = 0;

  obs::MetricsRegistry metrics;
  auto compiled = dialect::Compile(spec, nullptr, &metrics);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_FALSE(compiled->within_budget);
  EXPECT_GT(compiled->minimized_states, kMaxDfaStates);

  // Parser::Parse transparently runs the scalar wide-automaton walk and
  // counts the fallback.
  ParseOptions options;
  options.dialect = spec;
  options.metrics = &metrics;
  const std::string input =
      "0123456789abcdefghij\n"
      "ABCDEFGHIJklmnopqrst\n";
  auto result = Parser::Parse(input, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows, 2);
  ASSERT_EQ(static_cast<int>(result->table.columns.size()), 2);
  EXPECT_EQ(result->table.columns[0].StringValue(0), "0123456789");
  EXPECT_EQ(result->table.columns[1].StringValue(1), "klmnopqrst");
  obs::Counter* fallback = metrics.GetCounter("dialect.fallback");
  ASSERT_NE(fallback, nullptr);
  EXPECT_GE(fallback->Value(), 1);

  // The pipelined executor has no scalar fallback: it refuses cleanly.
  exec::PipelineExecutor executor;
  exec::ExecOptions pipelined;
  pipelined.base.dialect = spec;
  auto refused = executor.IngestBuffer(input, pipelined);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("register budget"),
            std::string::npos)
      << refused.status().ToString();
}

TEST(DialectEquivalenceTest, DialectAndExplicitFormatAreMutuallyExclusive) {
  ParseOptions options;
  options.format = *Rfc4180Format();
  options.dialect = CsvTwinSpec();
  auto result = Parser::Parse("a,b\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DialectEquivalenceTest, ReaderWithDialectEndToEnd) {
  DialectSpec spec;
  spec.name = "crlf";
  spec.record_delimiter = "\r\n";
  const std::string input = "h1,h2\r\n1,x\r\n2,y\r\n";
  auto table = Reader::FromBuffer(input)
                   .WithDialect(spec)
                   .WithHeader(true)
                   .Read();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows, 2);
  ASSERT_EQ(table->schema.num_fields(), 2);
  EXPECT_EQ(table->schema.field(0).name, "h1");
  EXPECT_EQ(table->columns[1].StringValue(1), "y");
}

TEST(DialectEquivalenceTest, SnifferScoresRegisteredDialects) {
  dialect::ClearRegisteredDialects();
  DialectSpec spec;
  spec.name = "euro-csv";
  spec.field_delimiter = ';';
  spec.comment = '#';
  spec.skip_empty_lines = true;
  dialect::RegisterDialect(spec);

  const std::string sample =
      "# comment line\n"
      "alpha;beta;gamma\n"
      "1;2;3\n"
      "4;5;6\n";
  auto sniffed = SniffDsvFormat(sample);
  dialect::ClearRegisteredDialects();
  ASSERT_TRUE(sniffed.ok()) << sniffed.status().ToString();
  ASSERT_TRUE(sniffed->dialect_spec.has_value());
  EXPECT_EQ(sniffed->dialect_spec->name, "euro-csv");
  EXPECT_EQ(sniffed->options.field_delimiter, ';');
  EXPECT_EQ(sniffed->num_columns, 3u);
}

}  // namespace
}  // namespace parparaw
