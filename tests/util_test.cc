#include <gtest/gtest.h>

#include "util/bit_util.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace parparaw {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad quote");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad quote");
  EXPECT_EQ(st.ToString(), "Parse error: bad quote");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::Invalid("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PARPARAW_RETURN_NOT_OK(Status::Invalid("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::Invalid("boom");
    return 7;
  };
  auto consume = [&](bool fail) -> Result<int> {
    PARPARAW_ASSIGN_OR_RETURN(int v, produce(fail));
    return v + 1;
  };
  EXPECT_EQ(*consume(false), 8);
  EXPECT_FALSE(consume(true).ok());
}

TEST(BitUtilTest, PopCount) {
  EXPECT_EQ(bit_util::PopCount(0), 0);
  EXPECT_EQ(bit_util::PopCount(0xFF), 8);
  EXPECT_EQ(bit_util::PopCount(~uint64_t{0}), 64);
}

TEST(BitUtilTest, FindMsb) {
  EXPECT_EQ(bit_util::FindMsb(0), -1);
  EXPECT_EQ(bit_util::FindMsb(1), 0);
  EXPECT_EQ(bit_util::FindMsb(0x80000000u), 31);
  EXPECT_EQ(bit_util::FindMsb(0x00008080u), 15);
}

TEST(BitUtilTest, BitFieldExtract) {
  EXPECT_EQ(bit_util::BitFieldExtract(0b110110, 1, 3), 0b011u);
  EXPECT_EQ(bit_util::BitFieldExtract(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
  EXPECT_EQ(bit_util::BitFieldExtract(0xFF, 4, 0), 0u);
}

TEST(BitUtilTest, BitFieldInsert) {
  EXPECT_EQ(bit_util::BitFieldInsert(0, 0b101, 2, 3), 0b10100u);
  EXPECT_EQ(bit_util::BitFieldInsert(0xFFFFFFFF, 0, 8, 8), 0xFFFF00FFu);
  // Inserting more bits than len keeps only len bits.
  EXPECT_EQ(bit_util::BitFieldInsert(0, 0xFF, 0, 4), 0xFu);
}

TEST(BitUtilTest, BfiBfeRoundTrip) {
  uint32_t word = 0;
  for (uint32_t pos = 0; pos <= 28; pos += 4) {
    word = bit_util::BitFieldInsert(word, pos / 4 + 1, pos, 4);
  }
  for (uint32_t pos = 0; pos <= 28; pos += 4) {
    EXPECT_EQ(bit_util::BitFieldExtract(word, pos, 4), pos / 4 + 1);
  }
}

TEST(BitUtilTest, PowersOfTwo) {
  EXPECT_TRUE(bit_util::IsPowerOfTwo(1));
  EXPECT_TRUE(bit_util::IsPowerOfTwo(64));
  EXPECT_FALSE(bit_util::IsPowerOfTwo(0));
  EXPECT_FALSE(bit_util::IsPowerOfTwo(6));
  EXPECT_EQ(bit_util::NextPowerOfTwo(5), 8u);
  EXPECT_EQ(bit_util::PrevPowerOfTwo(5), 4u);
  EXPECT_EQ(bit_util::Log2Floor(1), 0);
  EXPECT_EQ(bit_util::Log2Floor(9), 3);
}

TEST(BitmapTest, SetGetClear) {
  bit_util::Bitmap bitmap(130);
  EXPECT_EQ(bitmap.size(), 130u);
  EXPECT_FALSE(bitmap.Get(0));
  bitmap.Set(0);
  bitmap.Set(64);
  bitmap.Set(129);
  EXPECT_TRUE(bitmap.Get(0));
  EXPECT_TRUE(bitmap.Get(64));
  EXPECT_TRUE(bitmap.Get(129));
  EXPECT_EQ(bitmap.CountSet(), 3u);
  bitmap.Clear(64);
  EXPECT_FALSE(bitmap.Get(64));
  EXPECT_EQ(bitmap.CountSet(), 2u);
}

TEST(BitmapTest, RangeQueries) {
  bit_util::Bitmap bitmap(100);
  bitmap.Set(10);
  bitmap.Set(20);
  bitmap.Set(30);
  EXPECT_EQ(bitmap.CountSetInRange(0, 100), 3u);
  EXPECT_EQ(bitmap.CountSetInRange(11, 30), 1u);
  EXPECT_EQ(bitmap.FindLastSetInRange(0, 100), 30);
  EXPECT_EQ(bitmap.FindLastSetInRange(0, 30), 20);
  EXPECT_EQ(bitmap.FindLastSetInRange(0, 10), -1);
}

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * 1024 * 1024), "2.00 MB");
  EXPECT_EQ(FormatBytes(uint64_t{5} << 30), "5.00 GB");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("TRUE", "true"));
  EXPECT_FALSE(EqualsIgnoreCase("true", "tru"));
}

}  // namespace
}  // namespace parparaw
