#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/parser.h"
#include "dfa/formats.h"
#include "dfa/state_vector.h"
#include "io/csv_writer.h"

namespace parparaw {
namespace {

// ===========================================================================
// Property 1: a randomly generated table, serialised with RFC 4180 quoting
// and parsed back, reproduces every cell exactly — including embedded
// delimiters, escaped quotes, newlines, and NULL numerics. A second trip
// through the production csv_writer must yield an identical table.
// ===========================================================================

enum class CellKind { kString, kInt64, kFloat64 };

struct RandomTable {
  std::vector<CellKind> column_kinds;
  // Cell payloads: for string columns the exact text; for numeric columns
  // the textual form written into the CSV, empty meaning NULL.
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<int64_t>> int_values;
  std::vector<std::vector<double>> float_values;
};

// Characters deliberately skewed towards the structural ones so quoting and
// escaping paths are exercised constantly.
std::string RandomFieldText(std::mt19937_64& rng) {
  static constexpr char kAlphabet[] =
      "abcXYZ 09_.;:!?\t'#$%&()*+-/<=>@[]^`{|}~";
  std::uniform_int_distribution<int> length(1, 24);
  std::uniform_int_distribution<int> pick(0, 99);
  std::uniform_int_distribution<int> plain(
      0, static_cast<int>(sizeof(kAlphabet)) - 2);
  std::string out;
  const int n = length(rng);
  for (int i = 0; i < n; ++i) {
    const int p = pick(rng);
    if (p < 12) {
      out.push_back(',');  // embedded field delimiter
    } else if (p < 22) {
      out.push_back('"');  // embedded quote, must be escaped as ""
    } else if (p < 30) {
      out.push_back('\n');  // embedded record delimiter
    } else if (p < 34) {
      out.push_back('\r');
    } else {
      out.push_back(kAlphabet[plain(rng)]);
    }
  }
  return out;
}

RandomTable GenerateTable(uint64_t seed, int num_columns, int num_rows) {
  std::mt19937_64 rng(seed);
  RandomTable table;
  std::uniform_int_distribution<int> kind(0, 2);
  for (int c = 0; c < num_columns; ++c) {
    table.column_kinds.push_back(static_cast<CellKind>(kind(rng)));
  }
  std::uniform_int_distribution<int64_t> ints(-1'000'000'000'000,
                                              1'000'000'000'000);
  std::uniform_real_distribution<double> reals(-1e9, 1e9);
  std::uniform_int_distribution<int> null_roll(0, 9);
  for (int r = 0; r < num_rows; ++r) {
    std::vector<std::string> row;
    std::vector<int64_t> int_row;
    std::vector<double> float_row;
    for (int c = 0; c < num_columns; ++c) {
      switch (table.column_kinds[c]) {
        case CellKind::kString:
          // No NULL/empty strings: CSV cannot distinguish them, and this
          // property test demands *exact* equality.
          row.push_back(RandomFieldText(rng));
          int_row.push_back(0);
          float_row.push_back(0);
          break;
        case CellKind::kInt64: {
          if (null_roll(rng) == 0) {
            row.emplace_back();  // NULL
            int_row.push_back(0);
          } else {
            const int64_t v = ints(rng);
            row.push_back(std::to_string(v));
            int_row.push_back(v);
          }
          float_row.push_back(0);
          break;
        }
        case CellKind::kFloat64: {
          if (null_roll(rng) == 0) {
            row.emplace_back();  // NULL
            float_row.push_back(0);
          } else {
            const double v = reals(rng);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            row.emplace_back(buf);
            float_row.push_back(v);
          }
          int_row.push_back(0);
          break;
        }
      }
    }
    table.rows.push_back(std::move(row));
    table.int_values.push_back(std::move(int_row));
    table.float_values.push_back(std::move(float_row));
  }
  return table;
}

// Reference RFC 4180 serialiser, independent of src/io/csv_writer so the
// production writer is *under test* rather than trusted.
std::string SerialiseRfc4180(const RandomTable& table) {
  std::string out;
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      const std::string& cell = row[c];
      const bool is_string =
          table.column_kinds[c] == CellKind::kString;
      if (is_string) {
        out.push_back('"');
        for (char ch : cell) {
          if (ch == '"') out.push_back('"');  // RFC 4180 escape: ""
          out.push_back(ch);
        }
        out.push_back('"');
      } else {
        out += cell;  // numeric text or empty (NULL)
      }
    }
    out.push_back('\n');
  }
  return out;
}

Schema SchemaFor(const RandomTable& table) {
  Schema schema;
  for (size_t c = 0; c < table.column_kinds.size(); ++c) {
    const std::string name = "f" + std::to_string(c);
    switch (table.column_kinds[c]) {
      case CellKind::kString:
        schema.AddField(Field(name, DataType::String()));
        break;
      case CellKind::kInt64:
        schema.AddField(Field(name, DataType::Int64()));
        break;
      case CellKind::kFloat64:
        schema.AddField(Field(name, DataType::Float64()));
        break;
    }
  }
  return schema;
}

TEST(PropertyRoundTripTest, RandomTablesParseBackExactly) {
  for (uint64_t seed = 1000; seed < 1008; ++seed) {
    const RandomTable expected = GenerateTable(seed, 4, 80);
    const std::string csv = SerialiseRfc4180(expected);

    ParseOptions options;
    options.schema = SchemaFor(expected);
    auto parsed = Parser::Parse(csv, options);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": "
                             << parsed.status().ToString();
    const Table& table = parsed->table;
    ASSERT_EQ(table.num_rows, 80) << "seed " << seed;
    ASSERT_EQ(table.num_columns(), 4) << "seed " << seed;
    ASSERT_EQ(table.NumRejected(), 0) << "seed " << seed;

    for (int64_t r = 0; r < table.num_rows; ++r) {
      for (int c = 0; c < table.num_columns(); ++c) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " row " +
                     std::to_string(r) + " col " + std::to_string(c));
        const auto idx = static_cast<size_t>(r);
        switch (expected.column_kinds[c]) {
          case CellKind::kString:
            ASSERT_FALSE(table.columns[c].IsNull(r));
            ASSERT_EQ(table.columns[c].StringValue(r),
                      expected.rows[idx][c]);
            break;
          case CellKind::kInt64:
            if (expected.rows[idx][c].empty()) {
              ASSERT_TRUE(table.columns[c].IsNull(r));
            } else {
              ASSERT_FALSE(table.columns[c].IsNull(r));
              ASSERT_EQ(table.columns[c].Value<int64_t>(r),
                        expected.int_values[idx][c]);
            }
            break;
          case CellKind::kFloat64:
            if (expected.rows[idx][c].empty()) {
              ASSERT_TRUE(table.columns[c].IsNull(r));
            } else {
              ASSERT_FALSE(table.columns[c].IsNull(r));
              // %.17g text identifies a double uniquely and ParseFloat64
              // is correctly rounded, so equality is exact. (This test
              // caught a 1-ulp fast-path drift; see convert/numeric.cc.)
              ASSERT_EQ(table.columns[c].Value<double>(r),
                        expected.float_values[idx][c]);
            }
            break;
        }
      }
    }

    // Second leg: the production writer must re-serialise to text that
    // parses back to an identical table.
    auto rewritten = WriteCsv(table);
    ASSERT_TRUE(rewritten.ok()) << "seed " << seed;
    auto second = Parser::Parse(*rewritten, options);
    ASSERT_TRUE(second.ok()) << "seed " << seed << ": "
                             << second.status().ToString();
    EXPECT_TRUE(second->table.Equals(table)) << "seed " << seed;
  }
}

TEST(PropertyRoundTripTest, QuoteAllWriterModeRoundTrips) {
  const RandomTable expected = GenerateTable(77, 3, 50);
  ParseOptions options;
  options.schema = SchemaFor(expected);
  auto parsed = Parser::Parse(SerialiseRfc4180(expected), options);
  ASSERT_TRUE(parsed.ok());

  CsvWriteOptions write_options;
  write_options.quote_all = true;  // yelp-style: every field quoted
  auto rewritten = WriteCsv(parsed->table, write_options);
  ASSERT_TRUE(rewritten.ok());
  // quote_all quotes string fields unconditionally; NULL numerics must
  // still be written bare (a quoted empty string is not NULL), so
  // re-parsing with the same schema reproduces the table.
  auto second = Parser::Parse(*rewritten, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->table.Equals(parsed->table));
}

// ===========================================================================
// Property 2: ragged rows under the robust column policy. Short records
// pad with NULLs, long records drop excess fields; writing the parsed
// table and re-parsing must be a fixed point.
// ===========================================================================

TEST(PropertyRoundTripTest, RaggedRowsReachRoundTripFixedPoint) {
  for (uint64_t seed = 2000; seed < 2004; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> fields(1, 5);
    std::uniform_int_distribution<int64_t> ints(-9999, 9999);
    std::string csv;
    for (int r = 0; r < 120; ++r) {
      const int n = fields(rng);  // schema has 3 columns; 1..5 fields
      for (int f = 0; f < n; ++f) {
        if (f > 0) csv.push_back(',');
        csv += std::to_string(ints(rng));
      }
      csv.push_back('\n');
    }

    ParseOptions options;
    options.schema.AddField(Field("a", DataType::Int64()));
    options.schema.AddField(Field("b", DataType::Int64()));
    options.schema.AddField(Field("c", DataType::Int64()));
    options.column_count_policy = ColumnCountPolicy::kRobust;
    auto first = Parser::Parse(csv, options);
    ASSERT_TRUE(first.ok()) << "seed " << seed;
    ASSERT_EQ(first->table.num_rows, 120);
    EXPECT_LE(first->min_columns, first->max_columns);

    auto rewritten = WriteCsv(first->table);
    ASSERT_TRUE(rewritten.ok());
    auto second = Parser::Parse(*rewritten, options);
    ASSERT_TRUE(second.ok()) << "seed " << seed;
    EXPECT_TRUE(second->table.Equals(first->table)) << "seed " << seed;
  }
}

// ===========================================================================
// Property 3: the state-transition vectors of §3.1 form a monoid under
// composition — the algebraic fact the whole context step rests on. If
// associativity broke, the prefix scan over chunk vectors would no longer
// be allowed to re-associate work across threads.
// ===========================================================================

StateVector RandomVector(std::mt19937_64& rng, int num_states) {
  std::uniform_int_distribution<int> state(0, num_states - 1);
  StateVector v = StateVector::Identity(num_states);
  for (int i = 0; i < num_states; ++i) {
    v.Set(i, static_cast<uint8_t>(state(rng)));
  }
  return v;
}

TEST(StateVectorMonoidTest, ComposeIsAssociative) {
  std::mt19937_64 rng(42);
  for (int num_states = 1; num_states <= kMaxDfaStates; ++num_states) {
    for (int trial = 0; trial < 200; ++trial) {
      const StateVector a = RandomVector(rng, num_states);
      const StateVector b = RandomVector(rng, num_states);
      const StateVector c = RandomVector(rng, num_states);
      EXPECT_TRUE(Compose(Compose(a, b), c) == Compose(a, Compose(b, c)))
          << "num_states=" << num_states << " trial=" << trial;
    }
  }
}

TEST(StateVectorMonoidTest, IdentityIsTwoSided) {
  std::mt19937_64 rng(43);
  for (int num_states = 1; num_states <= kMaxDfaStates; ++num_states) {
    const StateVector e = StateVector::Identity(num_states);
    for (int trial = 0; trial < 100; ++trial) {
      const StateVector a = RandomVector(rng, num_states);
      EXPECT_TRUE(Compose(e, a) == a);
      EXPECT_TRUE(Compose(a, e) == a);
    }
  }
}

// The semantic link between the algebra and the DFA: the transition vector
// of a concatenation equals the composition of the parts' vectors. This is
// exactly the claim that lets ParPaRaw cut the input at arbitrary chunk
// boundaries.
TEST(StateVectorMonoidTest, TransitionVectorIsAHomomorphism) {
  auto format = Rfc4180Format();
  ASSERT_TRUE(format.ok());
  const Dfa& dfa = format->dfa;

  std::mt19937_64 rng(44);
  static constexpr char kCsvChars[] = "a,\"\n\r0;x";
  std::uniform_int_distribution<int> length(0, 40);
  std::uniform_int_distribution<int> pick(
      0, static_cast<int>(sizeof(kCsvChars)) - 2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string x, y;
    const int nx = length(rng);
    const int ny = length(rng);
    for (int i = 0; i < nx; ++i) x.push_back(kCsvChars[pick(rng)]);
    for (int i = 0; i < ny; ++i) y.push_back(kCsvChars[pick(rng)]);
    const std::string xy = x + y;

    const StateVector vx = dfa.TransitionVector(
        reinterpret_cast<const uint8_t*>(x.data()), x.size());
    const StateVector vy = dfa.TransitionVector(
        reinterpret_cast<const uint8_t*>(y.data()), y.size());
    const StateVector vxy = dfa.TransitionVector(
        reinterpret_cast<const uint8_t*>(xy.data()), xy.size());
    EXPECT_TRUE(vxy == Compose(vx, vy)) << "trial " << trial;
    // Empty chunks map to the identity element.
    const StateVector empty = dfa.TransitionVector(nullptr, 0);
    EXPECT_TRUE(empty == StateVector::Identity(dfa.num_states()));
  }
}

}  // namespace
}  // namespace parparaw
