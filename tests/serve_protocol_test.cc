// Protocol conformance and fuzz suite for parparawd (src/serve).
//
// Conformance: every encoder/decoder round-trips; every malformed input
// class (truncated header, bad magic, unknown opcode, nonzero reserved
// bytes, oversized/"negative" declared lengths, garbage payloads,
// mid-frame disconnects, byte-at-a-time and pipelined writes) yields a
// clean protocol error or a closed connection — never a crash, hang, or
// wrong answer. The fuzz section drives 10k+ seeded malformed frames at
// a live daemon and then proves it still serves bit-identical parses.
// scripts/check.sh serve runs this file under ASan and UBSan.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/reader.h"
#include "query/pushdown.h"
#include "robust/failpoint.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_io.h"
#include "workload/generators.h"

namespace parparaw {
namespace serve {
namespace {

std::string SmallCsv() {
  return "id,name,score\n1,alpha,3.5\n2,beta,4.0\n3,gamma,1.25\n";
}

// --- encoder/decoder conformance ---

TEST(ServeProtocolTest, FrameHeaderRoundTrip) {
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, kFlagStream, "payload", &frame);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 7);
  auto header = DecodeFrameHeader(frame, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->opcode, Opcode::kParseBuffer);
  EXPECT_EQ(header->flags, kFlagStream);
  EXPECT_EQ(header->payload_size, 7u);
}

TEST(ServeProtocolTest, FrameHeaderRejectsMalformed) {
  std::string frame;
  AppendFrame(Opcode::kPing, 0, "x", &frame);
  // Truncated header.
  EXPECT_FALSE(DecodeFrameHeader(frame.substr(0, 15), kDefaultMaxPayload).ok());
  EXPECT_FALSE(DecodeFrameHeader("", kDefaultMaxPayload).ok());
  // Bad magic.
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeFrameHeader(bad, kDefaultMaxPayload).ok());
  // Unknown opcode.
  bad = frame;
  bad[4] = '\x7F';
  EXPECT_FALSE(DecodeFrameHeader(bad, kDefaultMaxPayload).ok());
  // Nonzero reserved bytes.
  bad = frame;
  bad[6] = 1;
  EXPECT_FALSE(DecodeFrameHeader(bad, kDefaultMaxPayload).ok());
  // Oversized declared payload.
  bad = frame;
  bad[14] = '\x7F';  // huge length in the upper bytes
  EXPECT_FALSE(DecodeFrameHeader(bad, kDefaultMaxPayload).ok());
  // A "negative" length from a signed writer: all-ones u64.
  bad = frame;
  for (int i = 8; i < 16; ++i) bad[i] = '\xFF';
  EXPECT_FALSE(DecodeFrameHeader(bad, kDefaultMaxPayload).ok());
}

TEST(ServeProtocolTest, RequestHeaderRoundTrip) {
  RequestHeader header;
  header.error_policy = 3;  // kQuarantine
  header.header = 1;
  header.memory_budget = 1 << 20;
  header.partition_size = 4096;
  header.deadline_ms = 1500;
  const std::string encoded = EncodeRequestHeader(header);
  ASSERT_EQ(encoded.size(), kRequestHeaderSize);
  auto decoded = DecodeRequestHeader(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->error_policy, 3);
  EXPECT_EQ(decoded->header, 1);
  EXPECT_EQ(decoded->memory_budget, 1 << 20);
  EXPECT_EQ(decoded->partition_size, 4096u);
  EXPECT_EQ(decoded->deadline_ms, 1500u);
  EXPECT_EQ(decoded->encoded_size, kRequestHeaderSize);
}

TEST(ServeProtocolTest, V1RequestHeaderStillDecodes) {
  // A v1 client's 20-byte header (no deadline field) must keep working
  // against a v2 daemon: deadline absent, encoded_size telling the
  // caller where the data starts.
  RequestHeader header;
  header.version = kProtocolVersionV1;
  header.header = 0;
  header.partition_size = 8192;
  const std::string encoded = EncodeRequestHeader(header);
  ASSERT_EQ(encoded.size(), kRequestHeaderSizeV1);
  auto decoded = DecodeRequestHeader(encoded + "trailing-data");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kProtocolVersionV1);
  EXPECT_EQ(decoded->partition_size, 8192u);
  EXPECT_EQ(decoded->deadline_ms, 0u);
  EXPECT_EQ(decoded->encoded_size, kRequestHeaderSizeV1);
  // A v1-sized payload claiming v2 is truncated, not silently misread.
  std::string lying = encoded;
  lying[0] = kProtocolVersion;
  EXPECT_FALSE(DecodeRequestHeader(lying).ok());
}

TEST(ServeProtocolTest, ChecksummedFrameRoundTrips) {
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, kFlagChecksum, "payload", &frame);
  // Trailer follows the payload and is excluded from payload_size.
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 7 + kFrameChecksumSize);
  auto header = DecodeFrameHeader(frame, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->payload_size, 7u);
  EXPECT_NE(header->flags & kFlagChecksum, 0);
  const std::string_view payload =
      std::string_view(frame).substr(kFrameHeaderSize, 7);
  const std::string_view trailer =
      std::string_view(frame).substr(kFrameHeaderSize + 7);
  EXPECT_TRUE(VerifyFrameChecksum(payload, trailer).ok());
}

TEST(ServeProtocolTest, ChecksumDetectsEveryPayloadBitFlip) {
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, kFlagChecksum, "sensitive", &frame);
  const size_t payload_at = kFrameHeaderSize;
  const size_t payload_size = 9;
  for (size_t byte = 0; byte < payload_size + kFrameChecksumSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[payload_at + byte] ^= static_cast<char>(1 << bit);
      const Status verdict = VerifyFrameChecksum(
          std::string_view(corrupt).substr(payload_at, payload_size),
          std::string_view(corrupt).substr(payload_at + payload_size));
      EXPECT_FALSE(verdict.ok()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ServeProtocolTest, RequestHeaderRejectsMalformed) {
  const std::string good = EncodeRequestHeader(RequestHeader{});
  EXPECT_FALSE(DecodeRequestHeader(good.substr(0, 5)).ok());  // truncated
  std::string bad = good;
  bad[0] = 9;  // unsupported version
  EXPECT_FALSE(DecodeRequestHeader(bad).ok());
  bad = good;
  bad[1] = 77;  // unknown error policy
  EXPECT_FALSE(DecodeRequestHeader(bad).ok());
  bad = good;
  bad[2] = 3;  // header byte out of range
  EXPECT_FALSE(DecodeRequestHeader(bad).ok());
  bad = good;
  bad[3] = 1;  // reserved byte
  EXPECT_FALSE(DecodeRequestHeader(bad).ok());
  bad = good;
  bad[11] = '\xFF';  // negative memory budget (sign bit set)
  EXPECT_FALSE(DecodeRequestHeader(bad).ok());
}

TEST(ServeProtocolTest, PredicateBlockRoundTrip) {
  Predicate predicate(2, CompareOp::kContains, "needle");
  const std::string encoded = EncodePredicateBlock(predicate);
  auto decoded = DecodePredicateBlock(encoded + "trailing-body");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->predicate.column, 2);
  EXPECT_EQ(decoded->predicate.op, CompareOp::kContains);
  EXPECT_EQ(decoded->predicate.literal, "needle");
  EXPECT_EQ(decoded->encoded_size, encoded.size());
}

TEST(ServeProtocolTest, PredicateBlockRejectsMalformed) {
  const std::string good = EncodePredicateBlock(Predicate(0, CompareOp::kEq));
  EXPECT_FALSE(DecodePredicateBlock(good.substr(0, 3)).ok());  // truncated
  std::string bad = good;
  bad[4] = 99;  // unknown operator
  EXPECT_FALSE(DecodePredicateBlock(bad).ok());
  bad = good;
  bad[5] = 1;  // reserved byte
  EXPECT_FALSE(DecodePredicateBlock(bad).ok());
  bad = good;
  bad[8] = '\xFF';  // literal length overruns the payload
  EXPECT_FALSE(DecodePredicateBlock(bad).ok());
}

TEST(ServeProtocolTest, ErrorPayloadRoundTrip) {
  const Status original = Status::ParseError("ragged record at byte 17");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(original));
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
  // Malformed payloads decode to a *local* InvalidArgument.
  EXPECT_EQ(DecodeErrorPayload("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeErrorPayload("\x00\x00\x00\x00\x00").code(),
            StatusCode::kInvalidArgument);
}

// --- live-daemon conformance ---

class ServeConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions options;
    options.max_payload = 4 * 1024 * 1024;
    server_ = std::make_unique<Server>(options);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void TearDown() override { server_->Stop(); }

  Client MustConnect() {
    auto client = Client::Connect(port_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(ServeConformanceTest, PingEchoes) {
  Client client = MustConnect();
  EXPECT_TRUE(client.Ping("hello-daemon").ok());
  EXPECT_TRUE(client.Ping("").ok());
}

TEST_F(ServeConformanceTest, ParseMatchesLocalReader) {
  const std::string csv = GenerateYelpLike(7, 64 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Client client = MustConnect();
  auto reply = client.Parse(csv);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->busy);
  EXPECT_TRUE(reply->table.Equals(*expected));
}

TEST_F(ServeConformanceTest, StreamedPartsReassembleToWholeTable) {
  const std::string csv = GenerateTaxiLike(11, 96 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  Client client = MustConnect();
  RequestOptions options;
  options.stream = true;
  options.partition_size = 8 * 1024;  // force several partitions
  auto reply = client.Parse(csv, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(reply->parts.size(), 1u);
  EXPECT_EQ(reply->parts_declared, reply->parts.size());
  int64_t rows = 0;
  for (const Table& part : reply->parts) rows += part.num_rows;
  EXPECT_EQ(rows, expected->num_rows);
}

TEST_F(ServeConformanceTest, QuarantineTravelsWithTheTable) {
  // Quarantine captures type-conversion failures, and the daemon (like
  // Reader) resolves types from the first 256 KiB of the input. Keep the
  // probe window all clean Int64 rows so the schema commits to integers,
  // then plant two malformed values beyond the window: their conversions
  // fail at parse time and must come back in the kQuarantine frame.
  std::string csv = "a,b\n";
  int64_t rows = 0;
  while (csv.size() < 300 * 1024) {
    csv += std::to_string(rows);
    csv += ',';
    csv += std::to_string(rows * 2);
    csv += '\n';
    ++rows;
  }
  csv += "oops,1\n";
  ++rows;
  csv += "2,not-a-number\n";
  ++rows;
  csv += "3,4\n";
  ++rows;

  Client client = MustConnect();
  RequestOptions options;
  options.error_policy = 3;  // kQuarantine
  options.header = 1;
  options.want_quarantine = true;
  auto reply = client.Parse(csv, options);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->has_quarantine);
  ASSERT_EQ(reply->quarantine.size(), 2);
  // Quarantined records stay in the table (the bad cell becomes NULL);
  // the quarantine carries their raw bytes for later repair.
  EXPECT_EQ(reply->table.num_rows, rows);
  EXPECT_EQ(reply->quarantine.entries()[0].raw, "oops,1");
  EXPECT_EQ(reply->quarantine.entries()[1].raw, "2,not-a-number");
}

TEST_F(ServeConformanceTest, QueryMatchesLocalPushdown) {
  const std::string csv = GenerateTaxiLike(3, 48 * 1024);
  Client client = MustConnect();
  const Predicate predicate(0, CompareOp::kGt, "1");
  auto reply = client.Query(csv, predicate);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply->busy);

  // Local reference: same resolution recipe as the daemon.
  LoadOptions load;
  load.collect_statistics = false;
  LoadResult resolution;
  auto base = BulkLoader::ResolveBaseOptions(csv, false, load, &resolution);
  ASSERT_TRUE(base.ok());
  base->column_count_policy = ColumnCountPolicy::kRobust;
  PushdownStats stats;
  auto local = ParseWithPushdown(csv, *base, predicate, &stats);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(reply->records_scanned, stats.records_scanned);
  EXPECT_EQ(reply->records_selected, stats.records_selected);
  EXPECT_TRUE(reply->table.Equals(local->table));
  EXPECT_GT(reply->records_scanned, reply->records_selected);
}

TEST_F(ServeConformanceTest, RequestErrorKeepsConnectionUsable) {
  Client client = MustConnect();
  // Nonexistent server-local file: a request-level error, not a
  // protocol error — the connection must survive.
  auto reply = client.ParseFile("/nonexistent/parparaw.csv");
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(client.Ping().ok());
  // Out-of-range predicate column: same story.
  auto query = client.Query(SmallCsv(), Predicate(999, CompareOp::kEq, "1"));
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeConformanceTest, StatsEndpointAnswers) {
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->empty());
}

TEST_F(ServeConformanceTest, GarbageBytesGetErrorThenClose) {
  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(SendAll(sock->fd(), "GET / HTTP/1.1\r\n\r\n").ok());
  // The daemon answers one kError frame, then closes.
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kError);
  std::string payload;
  ASSERT_TRUE(RecvExact(sock->fd(), header->payload_size, &payload).ok());
  EXPECT_EQ(DecodeErrorPayload(payload).code(), StatusCode::kInvalidArgument);
  std::string rest;
  bool eof = false;
  ASSERT_TRUE(RecvExact(sock->fd(), 1, &rest, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(ServeConformanceTest, ResponseOpcodeAsRequestIsRejected) {
  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  std::string frame;
  AppendFrame(Opcode::kOkTable, 0, "", &frame);
  ASSERT_TRUE(SendAll(sock->fd(), frame).ok());
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kError);
}

TEST_F(ServeConformanceTest, OversizedDeclaredLengthIsNeverAllocated) {
  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  // Declares a 1 TiB payload; the server must refuse at the header.
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, 0, "", &frame);
  frame[13] = '\x01';  // payload_size byte 5 => 2^40
  ASSERT_TRUE(SendAll(sock->fd(), frame).ok());
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kError);
  // And the daemon still accepts new work.
  Client client = MustConnect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeConformanceTest, ByteAtATimeRequestStillParses) {
  const std::string csv = SmallCsv();
  std::string payload = EncodeRequestHeader(RequestHeader{});
  payload.append(csv);
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, 0, payload, &frame);

  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  for (char byte : frame) {
    ASSERT_TRUE(SendAll(sock->fd(), std::string_view(&byte, 1)).ok());
  }
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kOkTable);
}

TEST_F(ServeConformanceTest, PipelinedRequestsAnswerInOrder) {
  const std::string csv = SmallCsv();
  std::string payload = EncodeRequestHeader(RequestHeader{});
  payload.append(csv);
  std::string two_frames;
  AppendFrame(Opcode::kPing, 0, "first", &two_frames);
  AppendFrame(Opcode::kParseBuffer, 0, payload, &two_frames);

  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(SendAll(sock->fd(), two_frames).ok());

  std::string header_bytes, body;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto first = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->opcode, Opcode::kPong);
  ASSERT_TRUE(RecvExact(sock->fd(), first->payload_size, &body).ok());
  EXPECT_EQ(body, "first");

  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto second = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->opcode, Opcode::kOkTable);
}

TEST_F(ServeConformanceTest, MidFrameDisconnectLeavesDaemonHealthy) {
  for (int i = 0; i < 8; ++i) {
    auto sock = ConnectLoopback(port_);
    ASSERT_TRUE(sock.ok());
    std::string frame;
    AppendFrame(Opcode::kParseBuffer, 0, std::string(1000, 'x'), &frame);
    // Send the header plus a sliver of the payload, then vanish.
    ASSERT_TRUE(
        SendAll(sock->fd(), std::string_view(frame).substr(0, 20)).ok());
    sock->Close();
  }
  Client client = MustConnect();
  EXPECT_TRUE(client.Ping().ok());
}

// --- short-write regression (satellite: robust partial I/O) ---

class ServeFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    robust::FailpointRegistry::Instance().DisarmAll();
  }
};

TEST_F(ServeFailpointTest, IpcFramesSurviveOneByteWrites) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string csv = GenerateYelpLike(23, 16 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());

  // Every send (both sides — the registry is process-wide) moves one
  // byte at a time: response IPC frames dribble through the kernel.
  robust::FailpointRegistry::Instance().Arm(
      "serve.write.short", robust::EveryNthTrigger(1));
  auto reply = client->Parse(csv);
  // DisarmAll erases registry entries (and their hit counters), so read
  // the count first.
  const int64_t short_writes =
      robust::FailpointRegistry::Instance().hits("serve.write.short");
  robust::FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  EXPECT_GT(short_writes, 1000);
  server.Stop();
}

TEST_F(ServeFailpointTest, ShortReadsReassembleRequests) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string csv = SmallCsv();
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  robust::FailpointRegistry::Instance().Arm(
      "serve.read.short", robust::EveryNthTrigger(1));
  auto reply = client->Parse(csv);
  robust::FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  server.Stop();
}

TEST_F(ServeFailpointTest, UndeliverableErrorFrameClosesTheConnection) {
  // Regression (found by the chaos sweep): a request-level error whose
  // kError frame cannot be written must CLOSE the connection. Swallowing
  // the failed send left both sides blocked in read — the client
  // awaiting a reply that never came, the daemon awaiting the next
  // request.
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  // exec.read fails the ingest server-side; write hit 1 is the client's
  // request send, so EveryNth(2) lands on the daemon's kError frame.
  robust::FailpointRegistry::Instance().Arm("exec.read",
                                            robust::CountTrigger(1));
  robust::FailpointRegistry::Instance().Arm("serve.write",
                                            robust::EveryNthTrigger(2));
  auto reply = client->Parse(SmallCsv());
  robust::FailpointRegistry::Instance().DisarmAll();
  // The client sees the close (an I/O error), never a hang.
  ASSERT_FALSE(reply.ok());
  // And the daemon remains healthy for new connections.
  auto probe = Client::Connect(*port);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->Ping().ok());
  server.Stop();
}

TEST_F(ServeFailpointTest, TransientReadFaultsAreRetried) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  robust::FailpointRegistry::Instance().Arm(
      "serve.read", robust::CountTrigger(2, /*transient=*/true));
  EXPECT_TRUE(client->Ping().ok());
  robust::FailpointRegistry::Instance().DisarmAll();
  server.Stop();
}

// --- v2 checksummed frames against a live daemon ---

TEST_F(ServeConformanceTest, ChecksummedParseIsBitIdentical) {
  const std::string csv = GenerateYelpLike(31, 32 * 1024);
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  Client client = MustConnect();
  client.set_checksums(true);
  auto reply = client.Parse(csv);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  // Streaming + quarantine responses mirror the flag on every frame.
  RequestOptions options;
  options.stream = true;
  options.partition_size = 8 * 1024;
  auto streamed = client.Parse(csv, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_GT(streamed->parts.size(), 1u);
  EXPECT_EQ(server_->stats().checksum_errors, 0);
}

TEST_F(ServeConformanceTest, CorruptChecksummedFrameIsRejectedAndClosed) {
  const std::string csv = SmallCsv();
  std::string payload = EncodeRequestHeader(RequestHeader{});
  payload.append(csv);
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, kFlagChecksum, payload, &frame);
  // Flip one payload bit; the honest CRC trailer now disagrees.
  frame[kFrameHeaderSize + payload.size() / 2] ^= 0x01;

  auto sock = ConnectLoopback(port_);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(SendAll(sock->fd(), frame).ok());
  std::string header_bytes;
  ASSERT_TRUE(RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok());
  auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->opcode, Opcode::kError);
  // The error response mirrors the checksum flag; drain payload+trailer.
  std::string body;
  ASSERT_TRUE(RecvExact(sock->fd(), header->payload_size, &body).ok());
  if ((header->flags & kFlagChecksum) != 0) {
    std::string trailer;
    ASSERT_TRUE(RecvExact(sock->fd(), kFrameChecksumSize, &trailer).ok());
    EXPECT_TRUE(VerifyFrameChecksum(body, trailer).ok());
  }
  EXPECT_EQ(DecodeErrorPayload(body).code(), StatusCode::kInvalidArgument);
  // Then the connection closes (corrupted streams cannot resync).
  std::string rest;
  bool eof = false;
  ASSERT_TRUE(RecvExact(sock->fd(), 1, &rest, &eof).ok());
  EXPECT_TRUE(eof);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.checksum_errors, 1);
  EXPECT_GE(stats.protocol_errors, 1);
}

TEST_F(ServeFailpointTest, ServeCorruptFailpointIsCaughtByTheClient) {
  ServeOptions options;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  client->set_checksums(true);
  // AppendFrame hit 1 is the client's request (left intact); hit 2 is
  // the daemon's response, which the failpoint corrupts after its CRC
  // was computed — the client must detect the mismatch, not decode a
  // silently different table.
  robust::FailpointRegistry::Instance().Arm("serve.corrupt",
                                            robust::EveryNthTrigger(2));
  auto reply = client->Parse(SmallCsv());
  robust::FailpointRegistry::Instance().DisarmAll();
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(client->last_error_was_transport());
  // Fresh connection, failpoint gone: the daemon itself is healthy.
  auto probe = Client::Connect(*port);
  ASSERT_TRUE(probe.ok());
  probe->set_checksums(true);
  EXPECT_TRUE(probe->Ping().ok());
  server.Stop();
}

// --- fuzz: 10k+ seeded malformed frames ---

class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

 private:
  uint64_t state_;
};

TEST(ServeFuzzTest, TenThousandMalformedFramesNeverKillTheDaemon) {
  ServeOptions options;
  options.max_payload = 64 * 1024;  // fuzz-declared lengths stay small
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string csv = SmallCsv();
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());

  std::string valid_request = EncodeRequestHeader(RequestHeader{});
  valid_request.append(csv);
  std::string valid_frame;
  AppendFrame(Opcode::kParseBuffer, 0, valid_request, &valid_frame);

  constexpr int kIterations = 10000;
  FuzzRng rng(0xF00DFACE);
  for (int i = 0; i < kIterations; ++i) {
    auto sock = ConnectLoopback(*port);
    ASSERT_TRUE(sock.ok()) << "iteration " << i << ": "
                           << sock.status().ToString();
    std::string bytes;
    const int strategy = static_cast<int>(rng.Next() % 6);
    switch (strategy) {
      case 0: {  // pure garbage
        const size_t n = rng.Next() % 64;
        for (size_t b = 0; b < n; ++b)
          bytes.push_back(static_cast<char>(rng.Next()));
        break;
      }
      case 1: {  // valid header, truncated payload, disconnect
        AppendFrame(Opcode::kParseBuffer, 0,
                    std::string(1 + rng.Next() % 512, 'y'), &bytes);
        bytes.resize(kFrameHeaderSize + rng.Next() % 16);
        break;
      }
      case 2: {  // one mutated byte in an otherwise valid frame
        bytes = valid_frame;
        bytes[rng.Next() % bytes.size()] =
            static_cast<char>(rng.Next());
        break;
      }
      case 3: {  // random opcode/flags/reserved/length fields
        AppendFrame(Opcode::kPing, 0, "", &bytes);
        bytes[4] = static_cast<char>(rng.Next());
        bytes[5] = static_cast<char>(rng.Next());
        bytes[6] = static_cast<char>(rng.Next() % 2);
        bytes[8 + rng.Next() % 8] = static_cast<char>(rng.Next());
        break;
      }
      case 4: {  // valid frame with garbage *request payload*
        std::string payload;
        const size_t n = rng.Next() % 48;
        for (size_t b = 0; b < n; ++b)
          payload.push_back(static_cast<char>(rng.Next()));
        AppendFrame(static_cast<Opcode>(
                        (rng.Next() % 2) ? 0x02 : 0x04),  // parse / query
                    0, payload, &bytes);
        break;
      }
      default: {  // two frames glued together, second one damaged
        bytes = valid_frame;
        std::string second = valid_frame;
        second[rng.Next() % second.size()] =
            static_cast<char>(rng.Next());
        bytes.append(second);
        break;
      }
    }
    if (rng.Next() % 4 == 0) {
      // Byte-at-a-time (dribbled) delivery.
      bool sent = true;
      for (char byte : bytes) {
        if (!SendAll(sock->fd(), std::string_view(&byte, 1)).ok()) {
          sent = false;  // server already closed on us: acceptable
          break;
        }
      }
      (void)sent;
    } else {
      (void)SendAll(sock->fd(), bytes);
    }
    // Half the time vanish immediately (mid-frame disconnects); the rest
    // of the time say goodbye (shutdown of our write side, so the drain
    // below always terminates) and drain whatever the server answers
    // until it closes.
    if (rng.Next() % 2 == 0) {
      ::shutdown(sock->fd(), SHUT_WR);
      std::string sink;
      bool eof = false;
      while (RecvExact(sock->fd(), 512, &sink, &eof).ok() && !eof) {
      }
    }
    sock->Close();

    if (i % 1000 == 999) {
      // Liveness probe: the daemon still answers real work.
      auto probe = Client::Connect(*port);
      ASSERT_TRUE(probe.ok()) << "iteration " << i;
      ASSERT_TRUE(probe->Ping().ok()) << "iteration " << i;
    }
  }

  // After the storm: still serving bit-identical parses, and every
  // request slot returned.
  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  auto reply = client->Parse(csv);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  // A mutated frame can land as a *valid* parse whose client vanished;
  // its slot returns once the disconnect watchdog cancels it, so poll
  // briefly instead of asserting the instant count.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((server.inflight_requests() != 0 ||
          server.exec_admission()->inflight() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.inflight_requests(), 0);
  EXPECT_EQ(server.exec_admission()->inflight(), 0);
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.protocol_errors, 0);
  server.Stop();
}

TEST(ServeFuzzTest, TenThousandBitFlippedChecksummedFramesAllRejected) {
  // The bit-flip axis: a well-formed checksummed parse frame with one
  // seeded bit flipped somewhere in payload-or-trailer. Unlike the
  // malformed-frame storm above (where a mutation may happen to stay
  // valid), a single flip under an honest CRC-32C *must* be detected on
  // every single iteration: kError{kInvalidArgument}, connection closed,
  // never a silently different parse.
  ServeOptions options;
  options.max_payload = 64 * 1024;
  Server server(options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string csv = SmallCsv();
  std::string request = EncodeRequestHeader(RequestHeader{});
  request.append(csv);
  std::string frame;
  AppendFrame(Opcode::kParseBuffer, kFlagChecksum, request, &frame);
  const size_t flip_region = request.size() + kFrameChecksumSize;

  constexpr int kIterations = 10000;
  FuzzRng rng(0xC4C32C);
  int64_t rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::string corrupt = frame;
    const size_t byte = kFrameHeaderSize + rng.Next() % flip_region;
    corrupt[byte] ^= static_cast<char>(1 << (rng.Next() % 8));

    auto sock = ConnectLoopback(*port);
    ASSERT_TRUE(sock.ok()) << "iteration " << i;
    ASSERT_TRUE(SendAll(sock->fd(), corrupt).ok()) << "iteration " << i;
    std::string header_bytes;
    ASSERT_TRUE(
        RecvExact(sock->fd(), kFrameHeaderSize, &header_bytes).ok())
        << "iteration " << i;
    auto header = DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
    ASSERT_TRUE(header.ok()) << "iteration " << i;
    ASSERT_EQ(header->opcode, Opcode::kError) << "iteration " << i;
    std::string body;
    ASSERT_TRUE(RecvExact(sock->fd(), header->payload_size, &body).ok());
    EXPECT_EQ(DecodeErrorPayload(body).code(), StatusCode::kInvalidArgument)
        << "iteration " << i;
    ++rejected;
    sock->Close();

    if (i % 1000 == 999) {
      auto probe = Client::Connect(*port);
      ASSERT_TRUE(probe.ok()) << "iteration " << i;
      probe->set_checksums(true);
      ASSERT_TRUE(probe->Ping().ok()) << "iteration " << i;
    }
  }
  EXPECT_EQ(rejected, kIterations);

  // Still serving bit-identical checksummed parses afterwards, with
  // every slot back home.
  auto expected = Reader::FromBuffer(csv).Read();
  ASSERT_TRUE(expected.ok());
  auto client = Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  client->set_checksums(true);
  auto reply = client->Parse(csv);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->table.Equals(*expected));
  // The slot release lands just after the response bytes, so give the
  // connection thread a moment before asserting the gauges are home.
  const auto gauges_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((server.inflight_requests() != 0 ||
          server.exec_admission()->inflight() != 0) &&
         std::chrono::steady_clock::now() < gauges_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.inflight_requests(), 0);
  EXPECT_EQ(server.exec_admission()->inflight(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.checksum_errors, kIterations);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace parparaw
