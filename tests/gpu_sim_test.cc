#include <gtest/gtest.h>

#include "core/parser.h"
#include "sim/gpu_sim.h"
#include "workload/generators.h"

namespace parparaw {
namespace {

GpuKernelSpec BasicKernel() {
  GpuKernelSpec kernel;
  kernel.name = "k";
  kernel.num_threads = 1 << 20;
  kernel.threads_per_block = 128;
  kernel.bytes_read_per_thread = 32;
  kernel.bytes_written_per_thread = 8;
  kernel.cycles_per_thread = 64;
  return kernel;
}

TEST(GpuSimTest, BlockAndWaveAccounting) {
  GpuSimulator sim;
  const GpuKernelResult result = sim.SimulateKernel(BasicKernel());
  EXPECT_EQ(result.num_blocks, (1 << 20) / 128);
  EXPECT_EQ(result.blocks_per_sm, GpuSimulator::kMaxBlocksPerSm);
  const int64_t concurrent = int64_t{32} * sim.spec().num_sms;
  EXPECT_EQ(result.num_waves,
            (result.num_blocks + concurrent - 1) / concurrent);
  EXPECT_GT(result.total_seconds, 0);
}

TEST(GpuSimTest, SharedMemoryLimitsOccupancy) {
  GpuSimulator sim;
  GpuKernelSpec kernel = BasicKernel();
  kernel.shared_memory_per_block = GpuSimulator::kSharedMemoryPerSm / 2;
  const GpuKernelResult half = sim.SimulateKernel(kernel);
  EXPECT_EQ(half.blocks_per_sm, 2);
  kernel.shared_memory_per_block = GpuSimulator::kSharedMemoryPerSm;
  const GpuKernelResult one = sim.SimulateKernel(kernel);
  EXPECT_EQ(one.blocks_per_sm, 1);
  // Fewer resident blocks -> more waves -> no faster.
  EXPECT_GE(one.num_waves, half.num_waves);
}

TEST(GpuSimTest, ComputeVsMemoryBound) {
  GpuSimulator sim;
  GpuKernelSpec compute_heavy = BasicKernel();
  compute_heavy.cycles_per_thread = 10000;
  compute_heavy.bytes_read_per_thread = 1;
  compute_heavy.bytes_written_per_thread = 0;
  const GpuKernelResult c = sim.SimulateKernel(compute_heavy);
  EXPECT_GT(c.compute_seconds, c.memory_seconds);

  GpuKernelSpec memory_heavy = BasicKernel();
  memory_heavy.cycles_per_thread = 1;
  memory_heavy.bytes_read_per_thread = 4096;
  const GpuKernelResult m = sim.SimulateKernel(memory_heavy);
  EXPECT_GT(m.memory_seconds, m.compute_seconds);
}

TEST(GpuSimTest, EmptyKernelCostsOnlyLaunch) {
  GpuSimulator sim;
  GpuKernelSpec kernel = BasicKernel();
  kernel.num_threads = 0;
  const GpuKernelResult result = sim.SimulateKernel(kernel);
  EXPECT_NEAR(result.total_seconds,
              sim.spec().kernel_launch_overhead_us * 1e-6, 1e-12);
}

TEST(GpuSimTest, MoreCoresFasterUntilMemoryBound) {
  // Compute-heavy kernel: more cores help...
  GpuKernelSpec kernel = BasicKernel();
  kernel.cycles_per_thread = 4000;
  kernel.bytes_read_per_thread = 4;
  kernel.bytes_written_per_thread = 0;
  DeviceSpec small;
  small.cores = 512;
  DeviceSpec large;
  large.cores = 3584;
  const double t_small = GpuSimulator(small).SimulateKernel(kernel)
                             .total_seconds;
  const double t_large = GpuSimulator(large).SimulateKernel(kernel)
                             .total_seconds;
  EXPECT_LT(t_large, t_small);

  // ...while a memory-bound kernel sees no benefit (the flattening of
  // bench_scalability's core sweep).
  GpuKernelSpec bandwidth = BasicKernel();
  bandwidth.cycles_per_thread = 1;
  bandwidth.bytes_read_per_thread = 4096;
  const double m_small =
      GpuSimulator(small).SimulateKernel(bandwidth).total_seconds;
  const double m_large =
      GpuSimulator(large).SimulateKernel(bandwidth).total_seconds;
  EXPECT_NEAR(m_small, m_large, m_small * 0.01);
}

TEST(GpuSimTest, PipelineBucketsAllPopulated) {
  // Real work counters from a real parse feed the simulator.
  ParseOptions options;
  options.schema = YelpSchema();
  const std::string csv = GenerateYelpLike(3, 1 << 20);
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());

  GpuSimulator sim;
  std::vector<GpuKernelResult> kernels;
  const StepTimings t =
      sim.SimulatePipeline(parsed->work, /*chunk_size=*/31, 6,
                           parsed->table.num_columns(), &kernels);
  EXPECT_GT(t.parse_ms, 0);
  EXPECT_GT(t.scan_ms, 0);
  EXPECT_GT(t.tag_ms, 0);
  EXPECT_GT(t.partition_ms, 0);
  EXPECT_GT(t.convert_ms, 0);
  EXPECT_FALSE(kernels.empty());
  EXPECT_FALSE(kernels[0].ToString().empty());

  // Agreement with the roofline DeviceModel within an order of magnitude
  // (they are different abstractions of the same machine).
  const DeviceModel roofline;
  const double roofline_ms =
      roofline.ModelPipeline(parsed->work, parsed->table.num_columns(), 6)
          .TotalMs();
  EXPECT_LT(t.TotalMs(), roofline_ms * 10);
  EXPECT_GT(t.TotalMs(), roofline_ms / 10);
}

TEST(GpuSimTest, ChunkSizeSpikeFromSharedMemoryPressure) {
  // §5.1 reports spikes at 32/48/64 B chunks from shared-memory pressure
  // and occupancy; the simulator reproduces the mechanism: bigger chunks
  // -> more shared memory per block -> fewer resident blocks.
  ParseOptions options;
  options.schema = TaxiSchema();
  const std::string csv = GenerateTaxiLike(4, 1 << 20);
  auto parsed = Parser::Parse(csv, options);
  ASSERT_TRUE(parsed.ok());
  GpuSimulator sim;
  std::vector<GpuKernelResult> small_kernels, large_kernels;
  sim.SimulatePipeline(parsed->work, 31, 6, 17, &small_kernels);
  sim.SimulatePipeline(parsed->work, 512, 6, 17, &large_kernels);
  // Kernel 0 is the multi-DFA pass.
  EXPECT_GT(small_kernels[0].blocks_per_sm, large_kernels[0].blocks_per_sm);
}

}  // namespace
}  // namespace parparaw
